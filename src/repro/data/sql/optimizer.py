"""Cost-based physical planning: selectivity, cost model, join ordering.

The planner splits query compilation into a *logical* step (which tables,
which predicates, which join edges) and a *physical* step (which access
path per table, which join order, which join algorithm).  This module is
the physical step's brain:

- :class:`SelectivityEstimator` turns predicate shapes into expected
  row fractions using the ANALYZE snapshots in the catalog
  (:mod:`repro.data.sql.stats`), with textbook defaults when a value or
  histogram is unavailable;
- :class:`CostModel` prices sequential pages, index probes, and join
  algorithms, aware of the buffer pool size (a table that fits in the
  pool pays sequential-read cost even for "random" probes);
- :func:`choose_access_path` picks heap scan vs index equality vs index
  range per table reference;
- :func:`order_joins` greedily orders inner equi-join graphs by
  estimated intermediate cardinality and selects hash vs nested-loop
  per step.

Everything here is pure estimation over plain data — operator
construction stays in :mod:`repro.data.sql.planner`, which consumes the
:class:`ScanChoice` / :class:`JoinStep` decisions this module emits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.data.sql.stats import ColumnStats, TableStats

# Default selectivities when no statistics (or no comparable value) are
# available — the classical System R constants.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_SELECTIVITY = 0.25


# ---------------------------------------------------------------------------
# Predicate shapes (built by the planner from WHERE/ON conjuncts)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredicateSpec:
    """One single-table conjunct in estimator-friendly form.

    ``op`` is one of ``= < <= > >= between isnull notnull in other``;
    ``value`` holds the comparison constant (or item count for ``in``),
    ``low``/``high`` the BETWEEN bounds.
    """

    column: str
    op: str
    value: object = None
    low: object = None
    high: object = None


# ---------------------------------------------------------------------------
# Selectivity
# ---------------------------------------------------------------------------


class SelectivityEstimator:
    """Maps predicate specs to row fractions using a table's statistics."""

    def __init__(self, stats: Optional[TableStats]) -> None:
        self.stats = stats

    def _column(self, name: str) -> Optional[ColumnStats]:
        if self.stats is None:
            return None
        return self.stats.column(name)

    def conjunct(self, spec: PredicateSpec) -> float:
        column = self._column(spec.column)
        if spec.op == "=":
            if column is not None and column.n_distinct > 0:
                return column.eq_selectivity(spec.value)
            return DEFAULT_EQ_SELECTIVITY
        if spec.op in ("<", "<=", ">", ">="):
            if column is not None and column.histogram:
                return column.range_selectivity(spec.op, spec.value)
            return DEFAULT_RANGE_SELECTIVITY
        if spec.op == "between":
            if column is not None and column.histogram:
                return column.between_selectivity(spec.low, spec.high)
            return DEFAULT_RANGE_SELECTIVITY / 2
        if spec.op == "isnull":
            return column.null_fraction if column is not None \
                else DEFAULT_EQ_SELECTIVITY
        if spec.op == "notnull":
            return (1.0 - column.null_fraction) if column is not None \
                else 1.0 - DEFAULT_EQ_SELECTIVITY
        if spec.op == "in":
            per_item = (column.eq_selectivity()
                        if column is not None and column.n_distinct > 0
                        else DEFAULT_EQ_SELECTIVITY)
            count = spec.value if isinstance(spec.value, int) else 1
            return min(1.0, per_item * max(count, 1))
        return DEFAULT_SELECTIVITY

    def combined(self, specs: list[PredicateSpec]) -> float:
        """Independence-assumption product over all conjuncts."""
        selectivity = 1.0
        for spec in specs:
            selectivity *= self.conjunct(spec)
        return selectivity

    def n_distinct(self, column_name: str) -> int:
        column = self._column(column_name)
        if column is not None and column.n_distinct > 0:
            return column.n_distinct
        if self.stats is not None:
            return max(self.stats.row_count, 1)
        return 1


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


@dataclass
class CostModel:
    """Disk/CPU cost constants in "sequential page read" units.

    ``buffer_pages`` makes the model buffer-pool-aware: when a table's
    pages all fit in the pool, repeated "random" probes hit cache, so
    they are charged at sequential rather than random cost.
    """

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_operator_cost: float = 0.0025
    hash_entry_cost: float = 0.015
    #: Per-victim surcharge of an UPDATE/DELETE on top of its access
    #: path: row lock, snapshot re-read, version create/stamp, index
    #: maintenance.  Identical across candidate paths, so it shifts DML
    #: estimates without ever changing the access-path choice.
    cpu_dml_tuple_cost: float = 0.02
    buffer_pages: int = 256

    def random_page(self, table_pages: int) -> float:
        if table_pages <= self.buffer_pages:
            return self.seq_page_cost
        return self.random_page_cost

    @staticmethod
    def _btree_height(rows: float) -> float:
        # ~100-way fanout; at least root + leaf.
        return max(2.0, math.log(max(rows, 2.0), 100) + 1.0)

    def seq_scan(self, pages: int, rows: float) -> float:
        return pages * self.seq_page_cost + rows * self.cpu_tuple_cost

    def columnar_scan(self, pages: int, rows: float) -> float:
        """Scan of a table's columnar mirror: only zone-map-admitted
        pages are read, and encoded evaluation (dictionary codes, runs)
        is charged per *operation*, not per materialised tuple."""
        return pages * self.seq_page_cost + rows * self.cpu_operator_cost

    def index_scan(self, pages: int, rows: float,
                   matching_rows: float) -> float:
        """An index probe plus one heap fetch per matching row."""
        probe = self._btree_height(rows) * self.random_page(pages)
        fetches = matching_rows * self.random_page(pages)
        return probe + fetches + matching_rows * self.cpu_tuple_cost

    def dml_overhead(self, matching_rows: float) -> float:
        """Write-side cost an UPDATE/DELETE adds to its chosen access
        path (see :attr:`cpu_dml_tuple_cost`)."""
        return matching_rows * self.cpu_dml_tuple_cost

    def hash_join(self, outer_rows: float, inner_rows: float,
                  out_rows: float) -> float:
        build = inner_rows * (self.cpu_tuple_cost + self.hash_entry_cost)
        probe = outer_rows * (self.cpu_tuple_cost + self.cpu_operator_cost)
        return build + probe + out_rows * self.cpu_tuple_cost

    def nested_loop(self, outer_rows: float, inner_rows: float,
                    out_rows: float) -> float:
        compares = outer_rows * max(inner_rows, 1.0) \
            * self.cpu_operator_cost
        return compares + out_rows * self.cpu_tuple_cost


# ---------------------------------------------------------------------------
# Access path choice
# ---------------------------------------------------------------------------


@dataclass
class ScanChoice:
    """The physical access path selected for one table reference."""

    kind: str                  # seq | index_eq | index_range | columnar
    path: str                  # explain string, e.g. "index_eq(t.id)"
    cost: float
    est_rows: float            # rows after ALL pushable filters
    column: Optional[str] = None
    op: Optional[str] = None
    value: object = None
    low: object = None         # (value, inclusive) or None
    high: object = None
    #: Columnar scans carry the pushable conjuncts: zone maps skip
    #: blocks and encoded evaluation pre-filters rows with them.
    specs: tuple = ()


def choose_access_path(table, stats: TableStats,
                       specs: list[PredicateSpec],
                       cost_model: CostModel,
                       columnar=None) -> ScanChoice:
    """Pick the cheapest access path for a base table.

    ``specs`` are the single-table conjuncts; each spec whose column has
    a matching index generates an index candidate, and a valid columnar
    mirror (``columnar`` is the table's store when usable) generates a
    columnar-scan candidate priced by its zone-map skipping estimate.
    The estimated output cardinality (used for join ordering) is the
    same for every candidate — it reflects all filters — only the cost
    differs.
    """
    estimator = SelectivityEstimator(stats)
    rows = float(stats.row_count)
    pages = max(stats.page_count, 1)
    out_rows = max(rows * estimator.combined(specs), 0.0)

    # Workload observation: every sargable conjunct priced here is a
    # predicate sighting — whether or not an index exists yet.  That
    # asymmetry is the point: the index advisor reads these counts to
    # find columns that are filtered often but have no index.
    record = getattr(table, "record_predicate", None)
    if record is not None:
        for spec in specs:
            if spec.column and spec.op != "other":
                record(spec.column, spec.op)

    best = ScanChoice("seq", f"seq_scan({table.name})",
                      cost_model.seq_scan(pages, rows), out_rows)
    if columnar is not None:
        fraction, col_pages = columnar.admitted_fraction(specs)
        cost = cost_model.columnar_scan(col_pages, rows * fraction)
        if cost < best.cost:
            best = ScanChoice("columnar",
                              f"columnar_scan({table.name})",
                              cost, out_rows, specs=tuple(specs))
    for spec in specs:
        selectivity = estimator.conjunct(spec)
        matching = rows * selectivity
        if spec.op == "=":
            index = table.index_on((spec.column,))
            if index is None:
                continue
            cost = cost_model.index_scan(pages, rows, matching)
            if cost < best.cost:
                best = ScanChoice(
                    "index_eq", f"index_eq({table.name}.{spec.column})",
                    cost, out_rows, spec.column, "=", spec.value)
        elif spec.op in ("<", "<=", ">", ">="):
            index = table.index_on((spec.column,), require_btree=True)
            if index is None:
                continue
            cost = cost_model.index_scan(pages, rows, matching)
            if cost < best.cost:
                low = high = None
                if spec.op in (">", ">="):
                    low = (spec.value, spec.op == ">=")
                else:
                    high = (spec.value, spec.op == "<=")
                best = ScanChoice(
                    "index_range",
                    f"index_range({table.name}.{spec.column})",
                    cost, out_rows, spec.column, spec.op,
                    low=low, high=high)
        elif spec.op == "between":
            index = table.index_on((spec.column,), require_btree=True)
            if index is None:
                continue
            cost = cost_model.index_scan(pages, rows, matching)
            if cost < best.cost:
                best = ScanChoice(
                    "index_range",
                    f"index_range({table.name}.{spec.column})",
                    cost, out_rows, spec.column, "between",
                    low=(spec.low, True), high=(spec.high, True))
    return best


# ---------------------------------------------------------------------------
# Join ordering
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join conjunct connecting two relations.

    Columns are binding-qualified display names ("e.dept"); ``ndv``
    values come from the base tables' statistics.
    """

    left_rel: int
    right_rel: int
    left_column: str
    right_column: str
    left_ndv: int
    right_ndv: int


@dataclass
class JoinStep:
    """One step of the chosen left-deep join sequence."""

    relation: int              # index of the relation joined in
    method: str                # hash | nested_loop (cross when no edge)
    edges: list[JoinEdge] = field(default_factory=list)
    est_rows: float = 0.0      # cardinality after this step
    cost: float = 0.0


def order_joins(rel_rows: list[float], edges: list[JoinEdge],
                cost_model: CostModel) -> tuple[int, list[JoinStep]]:
    """Greedy left-deep join ordering by estimated cardinality.

    Starts from the smallest relation and repeatedly joins in the
    not-yet-joined relation that yields the smallest intermediate
    result, preferring connected relations over cross products.
    Returns the starting relation index and the step list.
    """
    count = len(rel_rows)
    start = min(range(count), key=lambda i: rel_rows[i])
    joined = {start}
    card = max(rel_rows[start], 0.0)
    steps: list[JoinStep] = []
    while len(joined) < count:
        candidates = []
        for j in range(count):
            if j in joined:
                continue
            connecting = [e for e in edges
                          if (e.left_rel in joined and e.right_rel == j)
                          or (e.right_rel in joined and e.left_rel == j)]
            selectivity = 1.0
            for edge in connecting:
                selectivity /= max(edge.left_ndv, edge.right_ndv, 1)
            out = card * max(rel_rows[j], 0.0) * selectivity
            candidates.append((not connecting, out, j, connecting))
        # Sort order: connected first, then smallest intermediate,
        # then syntactic position for determinism.
        candidates.sort()
        _, out, j, connecting = candidates[0]
        hash_cost = cost_model.hash_join(card, rel_rows[j], out)
        loop_cost = cost_model.nested_loop(card, rel_rows[j], out)
        if connecting and hash_cost <= loop_cost:
            method = "hash"
            cost = hash_cost
        else:
            method = "nested_loop"
            cost = loop_cost
        steps.append(JoinStep(j, method, connecting, out, cost))
        joined.add(j)
        card = out
    return start, steps
