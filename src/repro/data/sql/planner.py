"""Planner: SELECT statements → access-layer operator trees.

Planning is a two-phase pipeline:

1. **Logical**: the FROM/WHERE clauses are decomposed into table
   references, single-table filter conjuncts, and equi-join edges.
2. **Physical**: when every referenced table has ANALYZE statistics
   (and all joins are inner), the cost-based optimizer
   (:mod:`repro.data.sql.optimizer`) chooses access paths (heap scan vs
   index equality vs index range), orders the join graph greedily by
   estimated cardinality, and picks hash vs nested-loop per join.
   Without statistics the planner falls back to the original syntactic
   rules, which keeps plans deterministic for fresh tables:

   - an equality or range conjunct on an indexed column turns the scan
     into an index scan (predicate pushdown to the access path);
   - equi-join conditions become hash joins, anything else nested
     loops, in FROM-clause order.

Either way, grouping/aggregation compiles to a pre-projection + hash
aggregate + post-projection sandwich, and ORDER BY / LIMIT / DISTINCT
map directly onto their operators.

Expression evaluation follows SQL three-valued logic: comparisons with
NULL yield NULL, AND/OR propagate unknowns, and WHERE keeps only rows
whose predicate is exactly TRUE.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.access.operators import (
    Aggregate,
    Distinct,
    FusedSelectProject,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    Select,
    Sort,
    Source,
    TopK,
)
from repro.access.batch import batches_from_rows
from repro.columnar import PUSHABLE_OPS
from repro.data.transactions import Snapshot
from repro.data.sql import ast
from repro.data.sql.compiler import (
    _like_to_regex,
    compile_predicate,
    compile_projection,
    compile_scalar,
)
from repro.data.sql.optimizer import (
    CostModel,
    JoinEdge,
    PredicateSpec,
    ScanChoice,
    SelectivityEstimator,
    choose_access_path,
    order_joins,
)
from repro.errors import SQLPlanError

# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


@dataclass
class Scope:
    """Name resolution context: column display names in tuple order.

    Entries are ``binding.column`` qualified names; ``resolve`` accepts
    qualified and unqualified references (the latter must be unambiguous).
    """

    columns: list[str]
    node_slots: dict = field(default_factory=dict)  # AST node -> index

    def resolve(self, ref: ast.ColumnRef) -> int:
        wanted = ref.display()
        if ref.table is not None:
            matches = [i for i, name in enumerate(self.columns)
                       if name == wanted]
        else:
            matches = [i for i, name in enumerate(self.columns)
                       if name == ref.name or
                       name.endswith(f".{ref.name}")]
        if not matches:
            raise SQLPlanError(
                f"unknown column {wanted!r} (in scope: {self.columns})")
        if len(matches) > 1:
            raise SQLPlanError(f"ambiguous column {wanted!r}")
        return matches[0]


def _sql_not(value):
    if value is None:
        return None
    return not value


def _sql_and(left_fn, right_fn, row):
    left = left_fn(row)
    if left is False:
        return False
    right = right_fn(row)
    if right is False:
        return False
    if left is None or right is None:
        return None
    return bool(left) and bool(right)


def _sql_or(left_fn, right_fn, row):
    left = left_fn(row)
    if left is True:
        return True
    right = right_fn(row)
    if right is True:
        return True
    if left is None or right is None:
        return None
    return bool(left) or bool(right)


_COMPARE = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


def compile_expression(expr: ast.Expression, scope: Scope,
                       params: Sequence[Any] = ()) -> Callable[[tuple], Any]:
    """Compile an AST expression into a row -> value callable."""
    # Slot-mapped nodes (aggregate results, group keys in post-projection)
    # take precedence over structural compilation.
    if expr in scope.node_slots:
        index = scope.node_slots[expr]
        return lambda row: row[index]
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.Param):
        if expr.index >= len(params):
            raise SQLPlanError(
                f"statement references parameter {expr.index} but only "
                f"{len(params)} given")
        value = params[expr.index]
        return lambda row: value
    if isinstance(expr, ast.ColumnRef):
        index = scope.resolve(expr)
        return lambda row: row[index]
    if isinstance(expr, ast.Unary):
        inner = compile_expression(expr.operand, scope, params)
        if expr.operator == "NOT":
            return lambda row: _sql_not(inner(row))
        return lambda row: (None if inner(row) is None else -inner(row))
    if isinstance(expr, ast.IsNull):
        inner = compile_expression(expr.operand, scope, params)
        if expr.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None
    if isinstance(expr, ast.InList):
        inner = compile_expression(expr.operand, scope, params)
        items = [compile_expression(i, scope, params) for i in expr.items]

        def in_list(row):
            value = inner(row)
            if value is None:
                return None
            found = unknown = False
            for item in items:
                candidate = item(row)
                if candidate is None:
                    unknown = True
                elif candidate == value:
                    found = True
                    break
            if found:
                return not expr.negated
            if unknown:
                return None
            return expr.negated

        return in_list
    if isinstance(expr, ast.Between):
        inner = compile_expression(expr.operand, scope, params)
        low = compile_expression(expr.low, scope, params)
        high = compile_expression(expr.high, scope, params)

        def between(row):
            value, lo, hi = inner(row), low(row), high(row)
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return (not result) if expr.negated else result

        return between
    if isinstance(expr, ast.Binary):
        left = compile_expression(expr.left, scope, params)
        right = compile_expression(expr.right, scope, params)
        op_name = expr.operator
        if op_name == "AND":
            return lambda row: _sql_and(left, right, row)
        if op_name == "OR":
            return lambda row: _sql_or(left, right, row)
        if op_name == "LIKE":
            def like(row):
                value, pattern = left(row), right(row)
                if value is None or pattern is None:
                    return None
                return bool(_like_to_regex(pattern).match(value))

            return like
        if op_name in _COMPARE:
            compare = _COMPARE[op_name]

            def comparison(row):
                lv, rv = left(row), right(row)
                if lv is None or rv is None:
                    return None
                return compare(lv, rv)

            return comparison
        if op_name in _ARITH:
            arith = _ARITH[op_name]

            def arithmetic(row):
                lv, rv = left(row), right(row)
                if lv is None or rv is None:
                    return None
                return arith(lv, rv)

            return arithmetic
        if op_name == "/":
            def divide(row):
                lv, rv = left(row), right(row)
                if lv is None or rv is None:
                    return None
                if rv == 0:
                    return None  # SQL engines differ; NULL is the safe pick
                return lv / rv

            return divide
        if op_name == "%":
            def modulo(row):
                lv, rv = left(row), right(row)
                if lv is None or rv is None or rv == 0:
                    return None
                return lv % rv

            return modulo
        raise SQLPlanError(f"unsupported operator {op_name!r}")
    if isinstance(expr, ast.FunctionCall):
        raise SQLPlanError(
            f"aggregate {expr.name}() not allowed in this context")
    if isinstance(expr, ast.Star):
        raise SQLPlanError("* not allowed in this context")
    raise SQLPlanError(f"cannot compile expression {expr!r}")


def _expression_name(expr: ast.Expression) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        inner = "*" if expr.argument is None else \
            _expression_name(expr.argument)
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    return "expr"


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


@dataclass
class PlanInfo:
    """Explain-style plan summary, asserted on by tests and benchmarks.

    ``access_paths``/``joins``/``aggregated`` keep their historical
    rule-based format; the remaining fields are filled in when the
    cost-based optimizer produced the plan: per-table row/cost
    estimates, the chosen join order (binding names, execution order),
    and the plan's total estimated cardinality and cost.
    """

    access_paths: list[str] = field(default_factory=list)
    joins: list[str] = field(default_factory=list)
    aggregated: bool = False
    cost_based: bool = False
    join_order: list[str] = field(default_factory=list)
    estimates: list[dict] = field(default_factory=list)
    estimated_rows: Optional[float] = None
    estimated_cost: Optional[float] = None
    exec_engine: str = "row"
    top_k: bool = False
    fused: bool = False
    isolation: str = "2pl"
    #: ``binding=heap|columnar|hybrid`` per planned table access path
    #: (hybrid = AS OF merging the heap with migrated history).
    stores: list[str] = field(default_factory=list)
    #: Statement-cache disposition ("hit" | "miss" | "bypass") when the
    #: statement went through `Database.execute`'s text path, else None.
    cached: Optional[str] = None

    def as_dict(self) -> dict:
        summary = {"access_paths": self.access_paths, "joins": self.joins,
                   "aggregated": self.aggregated,
                   "cost_based": self.cost_based,
                   "exec": self.exec_engine,
                   "isolation": self.isolation,
                   "top_k": self.top_k, "fused": self.fused,
                   "stores": self.stores}
        if self.cached is not None:
            summary["cached"] = self.cached
        if self.cost_based:
            summary.update({
                "join_order": self.join_order,
                "estimates": self.estimates,
                "estimated_rows": self.estimated_rows,
                "estimated_cost": self.estimated_cost})
        return summary


@dataclass
class DMLPlan:
    """Victim-selection plan for one UPDATE/DELETE statement.

    ``victims`` yields ``(head_rid, row)`` candidates from the
    statement's read view; the executor still locks, re-reads, and
    re-applies the full WHERE per candidate (stale index candidates are
    dropped exactly like a stale seq-scan victim), so an index-driven
    plan answers identically to a full scan — just without reading the
    whole heap.
    """

    table_name: str
    access_path: str
    cost_based: bool = False
    est_rows: Optional[float] = None
    est_cost: Optional[float] = None
    victims: Optional[Callable[[], Any]] = None

    def as_dict(self) -> dict:
        summary = {"table": self.table_name,
                   "access_path": self.access_path,
                   "cost_based": self.cost_based}
        if self.cost_based:
            summary.update({"estimated_rows": self.est_rows,
                            "estimated_cost": self.est_cost})
        return summary


class Planner:
    """Plans SELECT statements against a catalog of tables and views.

    ``catalog`` must offer ``table(name)``, ``has_table(name)``,
    ``views`` (dict name -> SQL text) — satisfied by
    :class:`repro.data.catalog.Catalog`.
    """

    def __init__(self, catalog, view_parser: Optional[Callable] = None,
                 txn=None, engine: str = "vectorized",
                 isolation: str = "2pl") -> None:
        if engine not in ("vectorized", "row"):
            raise SQLPlanError(
                f"execution engine must be 'vectorized' or 'row', "
                f"not {engine!r}")
        self.catalog = catalog
        self._view_parser = view_parser
        self.txn = txn
        self.engine = engine
        self.isolation = isolation
        # The statement's read view over *versioned* tables: the fixed
        # transaction snapshot under snapshot isolation (lock-free
        # reads), else latest-committed-plus-own-writes for a 2PL
        # transaction touching versioned heaps.
        self.snapshot = txn.read_view() \
            if txn is not None and hasattr(txn, "read_view") else None

    def _lock_for_read(self, name: str, table=None) -> None:
        """S table lock for the locking read path.  Skipped only when
        the table is versioned *and* the session runs snapshot-based
        isolation (snapshot or serializable — SSI reads stay lock-free
        too; SIREAD tracking replaces blocking) — an unversioned table
        (e.g. created under 2PL and reopened under snapshot) has no
        version headers to filter by, so its readers must still block
        out writers."""
        if self.txn is None:
            return
        if self.isolation in ("snapshot", "serializable") \
                and table is not None \
                and getattr(table, "versioned", False):
            return
        self.txn.lock_shared(name)

    def _ssi_pair(self):
        """``(SSIManager, tracker)`` when the planning transaction runs
        serializable, else ``None`` — used to register index probes as
        SIREAD predicate (key-range) locks."""
        txn = self.txn
        if txn is None:
            return None
        ssi = getattr(getattr(txn, "manager", None), "ssi", None)
        if ssi is None:
            return None
        tracker = ssi.tracker(txn.txn_id)
        if tracker is None:
            return None
        return ssi, tracker

    # -- sources -----------------------------------------------------------------

    def _table_source(self, table_ref: ast.TableRef,
                      where: Optional[ast.Expression],
                      params: Sequence[Any],
                      info: PlanInfo) -> Operator:
        name = table_ref.name
        binding = table_ref.binding
        if self.catalog.has_table(name):
            table = self.catalog.table(name)
            if table_ref.as_of is not None:
                return self._as_of_source(table_ref, table, params, info)
            self._lock_for_read(name, table)
            columns = [f"{binding}.{c}" for c in table.schema.names]
            source = self._indexed_source(table, binding, columns, where,
                                          params, info)
            if source is not None:
                info.stores.append(f"{binding}=heap")
                return source
            store = self._columnar_candidate(table)
            if store is not None:
                specs = self._pushable_specs(table, binding, where,
                                             params)
                info.access_paths.append(f"columnar_scan({name})")
                info.stores.append(f"{binding}=columnar")
                return self._columnar_source(table, binding, store,
                                             specs)
            info.access_paths.append(f"seq_scan({name})")
            info.stores.append(f"{binding}=heap")
            snap = self.snapshot
            return Source(columns, lambda: table.rows(snapshot=snap),
                          batch_factory=lambda: table.scan_batches(
                              snapshot=snap))
        if name in getattr(self.catalog, "views", {}):
            if self._view_parser is None:
                raise SQLPlanError(f"cannot expand view {name!r}")
            view_select = self._view_parser(self.catalog.views[name])
            inner, inner_info = self.plan(view_select, params)
            info.access_paths.extend(
                f"view({name}):{p}" for p in inner_info.access_paths)
            info.stores.extend(inner_info.stores)
            rows_factory = inner  # operators are re-iterable
            columns = [f"{binding}.{c}" for c in inner.columns]
            return Source(columns, lambda: iter(rows_factory),
                          batch_factory=lambda: rows_factory.batches())
        raise SQLPlanError(f"no table or view named {name!r}")

    def _indexed_source(self, table, binding: str, columns: list[str],
                        where: Optional[ast.Expression],
                        params: Sequence[Any],
                        info: PlanInfo) -> Optional[Operator]:
        """Use an index when a WHERE conjunct matches one."""
        if where is None:
            return None
        record = getattr(table, "record_predicate", None)
        for conjunct in _conjuncts(where):
            match = _index_match(conjunct, binding)
            if match is None:
                continue
            column, op_name, value_expr = match
            # Sighting recorded before the index-existence check: the
            # advisor needs to see predicates on *unindexed* columns.
            if record is not None:
                record(column, op_name)
            index = table.index_on((column,),
                                   require_btree=op_name != "=")
            if index is None:
                continue
            value = compile_expression(value_expr, Scope([]), params)(())
            if op_name == "=":
                info.access_paths.append(
                    f"index_eq({table.name}.{column})")
                return self._index_source(table, columns, index, "eq",
                                          value)
            lo = hi = None
            lo_inc = hi_inc = True
            if op_name in (">", ">="):
                lo, lo_inc = (value,), op_name == ">="
            else:
                hi, hi_inc = (value,), op_name == "<="
            info.access_paths.append(
                f"index_range({table.name}.{column})")
            return self._index_source(table, columns, index, "range",
                                      lo=lo, hi=hi, lo_inclusive=lo_inc,
                                      hi_inclusive=hi_inc)
        return None

    def _index_source(self, table, columns: list[str], index, kind: str,
                      value: Any = None, lo: Optional[tuple] = None,
                      hi: Optional[tuple] = None,
                      lo_inclusive: bool = True,
                      hi_inclusive: bool = True) -> Source:
        """Leaf operator fetching heap rows through an index probe
        (shared by the rule-based and cost-based paths).

        Version-aware semantics: on versioned tables the probe returns
        *candidate* head RIDs — superseded-key entries are retained
        until vacuum, so a key some concurrent transaction changed still
        leads back to the row.  ``read_many``/``read_batches`` re-check
        each candidate's version chain against the statement snapshot
        (``self.snapshot``), and the residual WHERE applied above every
        index source re-checks the probed key against the *visible*
        version's values, discarding stale candidates — which is what
        makes an EXPLAIN-chosen index path answer identically to a
        sequential scan under any snapshot.

        On the lock-free read path (snapshot isolation over a versioned
        table) the probe runs under the table latch: readers take no
        transaction locks, so the in-memory index structure must be
        guarded against concurrent maintenance.  Point probes hold it
        for microseconds; a huge unbounded range scan holds it for its
        whole traversal — writers stall for that window (chunked
        re-seeking probes are a noted follow-up).  Locking read paths
        (2PL, or unversioned tables) already exclude writers via their
        S lock and skip the latch.
        """
        if kind == "eq":
            probe = lambda: index.lookup_eq((value,))  # noqa: E731
            lo_values = hi_values = (value,)
            lo_inc = hi_inc = True
        else:
            probe = (lambda: index.range_scan(lo, hi, lo_inclusive,
                                              hi_inclusive))
            lo_values, hi_values = lo, hi
            lo_inc, hi_inc = lo_inclusive, hi_inclusive
        latch = getattr(table, "_latch", None) \
            if self.isolation in ("snapshot", "serializable") and \
            getattr(table, "versioned", False) else None
        ssi = self._ssi_pair()
        key_columns = index.definition.columns

        def rids():
            table.index_probes += 1
            if ssi is not None:
                # The probed bounds are this statement's predicate read:
                # a SIREAD key-range lock catches writers that move rows
                # into (or out of) the range — the phantom case tuple
                # SIREADs cannot cover.
                ssi[0].record_key_range(ssi[1], table.name, key_columns,
                                        lo_values, hi_values, lo_inc,
                                        hi_inc)
            if latch is None:
                return probe()   # locking read path: stream lazily
            with latch:
                return list(probe())

        snap = self.snapshot
        # read_many holds one pin per same-page RID run (instead of a
        # pin/unpin per record) and preserves index order; the batch
        # factory additionally decodes each run in bulk.
        return Source(columns,
                      lambda: table.read_many(rids(), snapshot=snap),
                      batch_factory=lambda: table.read_batches(
                          rids(), snapshot=snap))

    # -- columnar sources --------------------------------------------------------

    def _columnar_candidate(self, table):
        """The table's columnar store when a mirror scan is legal right
        now: never under serializable isolation (mirror scans register
        no SIREADs, so SSI would lose its rw-dependency edges) and only
        while the mirror epoch matches the heap."""
        if self.isolation == "serializable":
            return None
        store = getattr(table, "columnar", None)
        if store is None or not store.mirror_valid(table):
            return None
        return store

    def _pushable_specs(self, table, binding: str,
                        where: Optional[ast.Expression],
                        params: Sequence[Any]) -> tuple:
        """WHERE conjuncts of this binding the columnar scan can
        evaluate on encoded data (zone-map skip + pre-decode filter).
        The full residual predicate still runs above the source, so a
        conjunct left out costs nothing but decode time."""
        if where is None:
            return ()
        schemas = {binding: table.schema}
        specs = []
        for conjunct in _conjuncts(where):
            spec = _predicate_spec(conjunct, binding, schemas, params)
            if spec.column and spec.op in PUSHABLE_OPS:
                specs.append(spec)
        return tuple(specs)

    def _columnar_source(self, table, binding: str, store,
                         specs: tuple) -> Source:
        """Leaf operator over the table's columnar mirror.

        The decision to use the mirror re-runs at iteration time under
        the store gate: if a write invalidated the mirror between plan
        and execution, the source silently degrades to the heap scan —
        both answer with exactly the statement snapshot's rows.  Block
        loads happen under the gate (so a concurrent rebuild cannot
        erase chunks mid-read); decode stays lazy per column."""
        columns = [f"{binding}.{c}" for c in table.schema.names]
        snap = self.snapshot

        def batches():
            with store.gate:
                if store.mirror_valid(table):
                    view = snap if snap is not None \
                        else table.txns.latest_snapshot()
                    return iter(list(store.mirror_batches(
                        store.mirror, view, specs)))
            return table.scan_batches(snapshot=snap)

        def rows():
            for batch in batches():
                yield from batch.iter_rows()

        return Source(columns, rows, batch_factory=batches)

    def _as_of_source(self, table_ref: ast.TableRef, table,
                      params: Sequence[Any], info: PlanInfo) -> Source:
        """``FROM t AS OF <xid>``: the table as transaction ``xid`` saw
        it — rows still in the heap merged with versions the vacuum
        migrated into columnar history.  The read view is a detached
        snapshot (``xid = 0``): it takes no locks and registers no
        SIREADs, time travel is a pure visibility computation."""
        name = table_ref.name
        binding = table_ref.binding
        if not getattr(table, "versioned", False):
            raise SQLPlanError(
                f"AS OF requires a versioned table: {name!r}")
        bound = compile_expression(table_ref.as_of, Scope([]), params)(())
        if not isinstance(bound, int) or isinstance(bound, bool) \
                or bound < 0:
            raise SQLPlanError(
                f"AS OF bound must be a non-negative transaction id, "
                f"got {bound!r}")
        columns = [f"{binding}.{c}" for c in table.schema.names]
        store = getattr(table, "columnar", None)

        def rows():
            # Committed-as-of view: sees x iff x <= bound and x is not
            # still in flight.  Heap and history are disjoint (migration
            # deletes from one and installs into the other inside one
            # gate hold), so the union is exact; materialising eagerly
            # under the gate keeps a concurrent migration from moving a
            # version between the two mid-read.
            view = Snapshot(0, bound + 1, frozenset(table.txns.active))
            if store is None:
                return iter(list(table.rows(snapshot=view)))
            with store.gate:
                merged = list(table.rows(snapshot=view))
                merged.extend(store.history_rows(view))
                return iter(merged)

        info.access_paths.append(f"as_of_scan({name})")
        info.stores.append(f"{binding}=hybrid")
        return Source(columns, rows,
                      batch_factory=lambda: batches_from_rows(
                          rows(), len(columns)))

    # -- subqueries (uncorrelated) ---------------------------------------------------

    def resolve_subqueries(self, expr: Optional[ast.Expression],
                           params: Sequence[Any]) -> Optional[ast.Expression]:
        """Evaluate uncorrelated subqueries, folding them into literals.

        Correlated subqueries (references to outer columns) fail inside the
        nested plan with an unknown-column error — a documented limit.
        """
        if expr is None:
            return None
        if isinstance(expr, ast.Subquery):
            rows = self._run_subquery(expr.query, params)
            if rows and len(rows[0]) != 1:
                raise SQLPlanError("scalar subquery must return 1 column")
            if len(rows) > 1:
                raise SQLPlanError(
                    f"scalar subquery returned {len(rows)} rows")
            return ast.Literal(rows[0][0] if rows else None)
        if isinstance(expr, ast.InSubquery):
            rows = self._run_subquery(expr.query, params)
            if rows and len(rows[0]) != 1:
                raise SQLPlanError("IN subquery must return 1 column")
            items = tuple(ast.Literal(r[0]) for r in rows)
            operand = self.resolve_subqueries(expr.operand, params)
            if not items:
                # x IN (empty) is FALSE; NOT IN (empty) is TRUE.
                return ast.Literal(expr.negated)
            return ast.InList(operand, items, expr.negated)
        if isinstance(expr, ast.Unary):
            return ast.Unary(expr.operator,
                             self.resolve_subqueries(expr.operand, params))
        if isinstance(expr, ast.Binary):
            return ast.Binary(expr.operator,
                              self.resolve_subqueries(expr.left, params),
                              self.resolve_subqueries(expr.right, params))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self.resolve_subqueries(expr.operand, params),
                              expr.negated)
        if isinstance(expr, ast.InList):
            return ast.InList(
                self.resolve_subqueries(expr.operand, params),
                tuple(self.resolve_subqueries(i, params)
                      for i in expr.items),
                expr.negated)
        if isinstance(expr, ast.Between):
            return ast.Between(
                self.resolve_subqueries(expr.operand, params),
                self.resolve_subqueries(expr.low, params),
                self.resolve_subqueries(expr.high, params),
                expr.negated)
        return expr

    def _run_subquery(self, query: ast.SelectStatement,
                      params: Sequence[Any]) -> list[tuple]:
        nested = Planner(self.catalog, self._view_parser, self.txn,
                         engine=self.engine, isolation=self.isolation)
        plan, _ = nested.plan(query, params)
        if self.engine == "vectorized":
            return plan.to_list_batched()
        return list(plan)

    # -- SELECT planning -----------------------------------------------------------

    def plan(self, select: ast.SelectStatement,
             params: Sequence[Any] = ()) -> tuple[Operator, PlanInfo]:
        if select.where is not None or select.having is not None:
            select = ast.SelectStatement(
                items=select.items, table=select.table, joins=select.joins,
                where=self.resolve_subqueries(select.where, params),
                group_by=select.group_by,
                having=self.resolve_subqueries(select.having, params),
                order_by=select.order_by, limit=select.limit,
                offset=select.offset, distinct=select.distinct)
        info = PlanInfo()
        info.exec_engine = self.engine
        info.isolation = self.isolation
        if select.table is None:
            # SELECT without FROM: single synthetic row.
            plan: Operator = Source([], lambda: iter([()]))
        else:
            plan = self._plan_from_clause(select, params, info)
        scope = Scope(list(plan.columns))
        if select.where is not None:
            predicate = compile_predicate(select.where, scope, params)
            plan = Select(plan, predicate.row,
                          batch_predicate=predicate.batch,
                          rows_predicate=predicate.rows)

        aggregates = _collect_aggregates(select)
        if aggregates or select.group_by:
            plan, scope = self._plan_aggregation(plan, scope, select,
                                                 aggregates, params, info)
            if select.having is not None:
                having = compile_predicate(select.having, scope, params)
                plan = Select(plan, having.row,
                              batch_predicate=having.batch,
                              rows_predicate=having.rows)
            plan, scope = self._plan_projection(plan, scope, select, params)
        else:
            if select.having is not None:
                raise SQLPlanError("HAVING requires GROUP BY or aggregates")
            plan, scope = self._plan_order_then_project(plan, scope, select,
                                                        params, info)
        if select.distinct:
            plan = Distinct(plan)
        if aggregates or select.group_by:
            plan = self._plan_order(plan, scope, select, params, info)
        if select.limit is not None or select.offset is not None:
            limit, offset = self._limit_bounds(select, params)
            plan = Limit(plan, limit, offset or 0)
        return plan, info

    @staticmethod
    def _limit_bounds(select: ast.SelectStatement,
                      params: Sequence[Any]) -> tuple[Optional[int], int]:
        limit = (compile_scalar(select.limit, Scope([]), params)(())
                 if select.limit is not None else None)
        offset = (compile_scalar(select.offset, Scope([]), params)(())
                  if select.offset is not None else 0)
        return limit, offset or 0

    def _sort_operator(self, child: Operator,
                       keys: Sequence[tuple[int, bool]],
                       select: Optional[ast.SelectStatement],
                       params: Sequence[Any],
                       info: PlanInfo) -> Operator:
        """Sort, or a bounded top-k heap when a LIMIT directly bounds
        this sort (Sort→Limit plans keep only limit+offset rows)."""
        if select is not None and select.limit is not None:
            limit, offset = self._limit_bounds(select, params)
            if isinstance(limit, int) and not isinstance(limit, bool) \
                    and limit >= 0 and isinstance(offset, int) \
                    and offset >= 0:
                info.top_k = True
                return TopK(child, keys, limit + offset)
        return Sort(child, keys)

    # -- FROM-clause planning (cost-based with rule-based fallback) -------------------

    def _plan_from_clause(self, select: ast.SelectStatement,
                          params: Sequence[Any],
                          info: PlanInfo) -> Operator:
        costed = self._cost_based_from(select, params, info)
        if costed is not None:
            return costed
        plan = self._table_source(select.table, select.where, params,
                                  info)
        for join in select.joins:
            right = self._table_source(join.table, None, params, info)
            plan = self._plan_join(plan, right, join, params, info)
        return plan

    def _cost_based_from(self, select: ast.SelectStatement,
                         params: Sequence[Any],
                         info: PlanInfo) -> Optional[Operator]:
        """Physical planning over statistics; None → rule-based fallback.

        Applies only when every reference is a base table with ANALYZE
        statistics, bindings are unambiguous, and all joins are inner
        (outer joins constrain both pushdown and reordering).
        """
        stats_for = getattr(self.catalog, "stats_for", None)
        if stats_for is None or select.table is None:
            return None
        refs = [select.table] + [join.table for join in select.joins]
        if any(join.kind != "inner" for join in select.joins):
            return None
        if any(ref.as_of is not None for ref in refs):
            # Time travel reads a merged heap ∪ history view; only the
            # rule-based hybrid source knows how to build it.
            return None
        bindings: dict[str, Any] = {}
        all_stats = {}
        for ref in refs:
            if not self.catalog.has_table(ref.name) \
                    or ref.binding in bindings:
                return None
            stats = stats_for(ref.name)
            if stats is None or (stats.row_count == 0 and
                                 self.catalog.table(ref.name).row_count):
                # No statistics (or a snapshot of a then-empty table):
                # stay rule-based.  Ordinary drift is tolerated — stats
                # describe the table as of the last ANALYZE.
                return None
            bindings[ref.binding] = self.catalog.table(ref.name)
            all_stats[ref.binding] = stats
        schemas = {b: t.schema for b, t in bindings.items()}

        # Logical step: gather conjuncts from WHERE and all ON clauses.
        conjuncts: list[ast.Expression] = []
        if select.where is not None:
            conjuncts.extend(_conjuncts(select.where))
        on_conjuncts: list[ast.Expression] = []
        for join in select.joins:
            if join.condition is not None:
                on_conjuncts.extend(_conjuncts(join.condition))
        conjuncts.extend(on_conjuncts)

        specs: dict[str, list[PredicateSpec]] = \
            {b: [] for b in bindings}
        pushdown: dict[str, list[ast.Expression]] = \
            {b: [] for b in bindings}
        edges: list[JoinEdge] = []
        rel_index = {ref.binding: i for i, ref in enumerate(refs)}
        estimators = {b: SelectivityEstimator(all_stats[b])
                      for b in bindings}
        for conjunct in conjuncts:
            owners = _conjunct_bindings(conjunct, schemas)
            if owners is None:
                continue
            if len(owners) == 1:
                binding = next(iter(owners))
                specs[binding].append(
                    _predicate_spec(conjunct, binding, schemas, params))
                pushdown[binding].append(conjunct)
            elif len(owners) == 2:
                edge = _join_edge(conjunct, schemas, rel_index,
                                  estimators)
                if edge is not None:
                    edges.append(edge)

        cost_model = CostModel(buffer_pages=self._buffer_pages())

        # Physical step 1: access path per table reference.
        relations: list[tuple[str, Operator, ScanChoice]] = []
        total_cost = 0.0
        for ref in refs:
            table = bindings[ref.binding]
            self._lock_for_read(ref.name, table)
            choice = choose_access_path(
                table, all_stats[ref.binding], specs[ref.binding],
                cost_model, columnar=self._columnar_candidate(table))
            source = self._choice_source(table, ref.binding, choice)
            # Apply the relation's own filters at the scan, so joins
            # see the cardinality the estimates were computed from
            # (legal because all joins are inner here).
            if pushdown[ref.binding]:
                condition = pushdown[ref.binding][0]
                for extra in pushdown[ref.binding][1:]:
                    condition = ast.Binary("AND", condition, extra)
                predicate = compile_predicate(
                    condition, Scope(list(source.columns)), params)
                source = Select(source, predicate.row,
                                batch_predicate=predicate.batch,
                                rows_predicate=predicate.rows)
            info.access_paths.append(choice.path)
            info.stores.append(
                f"{ref.binding}="
                f"{'columnar' if choice.kind == 'columnar' else 'heap'}")
            info.estimates.append({
                "table": ref.name, "binding": ref.binding,
                "path": choice.path,
                "rows": round(choice.est_rows, 1),
                "cost": round(choice.cost, 2)})
            total_cost += choice.cost
            relations.append((ref.binding, source, choice))

        # Physical step 2: join order + algorithm per step.
        start, steps = order_joins(
            [choice.est_rows for _, _, choice in relations], edges,
            cost_model)
        binding_order = [relations[start][0]]
        tree = relations[start][1]
        est_rows = relations[start][2].est_rows
        for step in steps:
            binding, source, choice = relations[step.relation]
            tree = self._join_step(tree, source, step, info)
            binding_order.append(binding)
            total_cost += step.cost
            est_rows = step.est_rows
        info.join_order = binding_order
        info.estimated_rows = round(est_rows, 1)
        info.estimated_cost = round(total_cost, 2)
        info.cost_based = True

        # Re-enforce every ON conjunct (hash joins only check their equi
        # keys; WHERE is applied by the caller).
        if on_conjuncts:
            condition = on_conjuncts[0]
            for extra in on_conjuncts[1:]:
                condition = ast.Binary("AND", condition, extra)
            predicate = compile_predicate(
                condition, Scope(list(tree.columns)), params)
            tree = Select(tree, predicate.row,
                          batch_predicate=predicate.batch,
                          rows_predicate=predicate.rows)

        # Restore the syntactic column order so downstream name
        # resolution (and SELECT *) is independent of the join order.
        syntactic = []
        for binding, source, _ in relations:
            syntactic.extend(source.columns)
        if list(tree.columns) != syntactic:
            positions = [tree.columns.index(c) for c in syntactic]
            tree = Project.by_indexes(tree, positions)
        return tree

    def _buffer_pages(self) -> int:
        pages = getattr(self.catalog, "pages", None)
        pool = getattr(pages, "pool", None)
        return getattr(pool, "capacity", 256)

    def _choice_source(self, table, binding: str,
                       choice: ScanChoice) -> Operator:
        """Materialise a :class:`ScanChoice` as a leaf operator."""
        columns = [f"{binding}.{c}" for c in table.schema.names]
        if choice.kind == "seq":
            snap = self.snapshot
            return Source(columns, lambda: table.rows(snapshot=snap),
                          batch_factory=lambda: table.scan_batches(
                              snapshot=snap))
        if choice.kind == "columnar":
            store = getattr(table, "columnar", None)
            if store is None:    # race: tier disabled since costing
                snap = self.snapshot
                return Source(columns,
                              lambda: table.rows(snapshot=snap),
                              batch_factory=lambda: table.scan_batches(
                                  snapshot=snap))
            return self._columnar_source(table, binding, store,
                                         choice.specs)
        index = table.index_on((choice.column,),
                               require_btree=choice.kind == "index_range")
        if choice.kind == "index_eq":
            return self._index_source(table, columns, index, "eq",
                                      choice.value)
        lo = (choice.low[0],) if choice.low is not None else None
        lo_inc = choice.low[1] if choice.low is not None else True
        hi = (choice.high[0],) if choice.high is not None else None
        hi_inc = choice.high[1] if choice.high is not None else True
        return self._index_source(table, columns, index, "range",
                                  lo=lo, hi=hi, lo_inclusive=lo_inc,
                                  hi_inclusive=hi_inc)

    # -- DML victim selection ---------------------------------------------------------

    def plan_dml(self, table_name: str,
                 where: Optional[ast.Expression],
                 params: Sequence[Any]) -> DMLPlan:
        """Costed access path for UPDATE/DELETE victim selection.

        With ANALYZE statistics the cost model chooses between a heap
        scan and the matching index probes (same machinery as SELECT,
        plus the per-victim write overhead); without statistics the
        first conjunct matching an index drives a rule-based probe, and
        a statement with no usable conjunct falls back to the seq scan
        DML always used before.
        """
        table = self.catalog.table(table_name)
        snap = self.snapshot
        seq_victims = lambda: table.scan(snapshot=snap)  # noqa: E731
        conjuncts = _conjuncts(where) if where is not None else []

        stats_for = getattr(self.catalog, "stats_for", None)
        stats = stats_for(table_name) if stats_for is not None else None
        if stats is not None and not (stats.row_count == 0
                                      and table.row_count):
            schemas = {table_name: table.schema}
            specs = []
            for conjunct in conjuncts:
                owners = _conjunct_bindings(conjunct, schemas)
                if owners is not None and owners <= {table_name}:
                    specs.append(_predicate_spec(conjunct, table_name,
                                                 schemas, params))
                else:
                    specs.append(PredicateSpec("", "other"))
            cost_model = CostModel(buffer_pages=self._buffer_pages())
            choice = choose_access_path(table, stats, specs, cost_model)
            plan = DMLPlan(
                table_name, choice.path, cost_based=True,
                est_rows=round(choice.est_rows, 1),
                est_cost=round(
                    choice.cost + cost_model.dml_overhead(choice.est_rows),
                    2))
            if choice.kind == "seq":
                plan.victims = seq_victims
            elif choice.kind == "index_eq":
                index = table.index_on((choice.column,))
                plan.victims = self._dml_index_victims(
                    table, index, "eq", value=choice.value)
            else:
                index = table.index_on((choice.column,),
                                       require_btree=True)
                lo = (choice.low[0],) if choice.low is not None else None
                lo_inc = choice.low[1] if choice.low is not None else True
                hi = (choice.high[0],) \
                    if choice.high is not None else None
                hi_inc = choice.high[1] \
                    if choice.high is not None else True
                plan.victims = self._dml_index_victims(
                    table, index, "range", lo=lo, hi=hi,
                    lo_inclusive=lo_inc, hi_inclusive=hi_inc)
            return plan

        record = getattr(table, "record_predicate", None)
        for conjunct in conjuncts:
            match = _index_match(conjunct, table_name)
            if match is None:
                continue
            column, op_name, value_expr = match
            if record is not None:
                record(column, op_name)
            index = table.index_on((column,),
                                   require_btree=op_name != "=")
            if index is None:
                continue
            value = compile_expression(value_expr, Scope([]), params)(())
            if op_name == "=":
                return DMLPlan(
                    table_name, f"index_eq({table.name}.{column})",
                    victims=self._dml_index_victims(table, index, "eq",
                                                    value=value))
            lo = hi = None
            lo_inc = hi_inc = True
            if op_name in (">", ">="):
                lo, lo_inc = (value,), op_name == ">="
            else:
                hi, hi_inc = (value,), op_name == "<="
            return DMLPlan(
                table_name, f"index_range({table.name}.{column})",
                victims=self._dml_index_victims(
                    table, index, "range", lo=lo, hi=hi,
                    lo_inclusive=lo_inc, hi_inclusive=hi_inc))
        return DMLPlan(table_name, f"seq_scan({table_name})",
                       victims=seq_victims)

    def _dml_index_victims(self, table, index, kind: str,
                           value: Any = None, lo: Optional[tuple] = None,
                           hi: Optional[tuple] = None,
                           lo_inclusive: bool = True,
                           hi_inclusive: bool = True) -> Callable:
        """Victim producer for a DML index probe: candidate head RIDs
        from the (version-aware) index, re-checked against the statement
        view by ``read_pairs``.  The probe always runs under the table
        latch — a DML statement holds no S lock in any isolation mode,
        so the in-memory index structure must be guarded against
        concurrent maintenance.  Under serializable isolation the probed
        bounds register as a SIREAD key-range lock, exactly like a
        SELECT through the same index."""
        if kind == "eq":
            probe = lambda: index.lookup_eq((value,))  # noqa: E731
            lo_values = hi_values = (value,)
            lo_inc = hi_inc = True
        else:
            probe = (lambda: index.range_scan(lo, hi, lo_inclusive,
                                              hi_inclusive))
            lo_values, hi_values = lo, hi
            lo_inc, hi_inc = lo_inclusive, hi_inclusive
        latch = getattr(table, "_latch", None)
        snap = self.snapshot
        ssi = self._ssi_pair()
        key_columns = index.definition.columns

        def victims():
            table.index_probes += 1
            if ssi is not None:
                ssi[0].record_key_range(ssi[1], table.name, key_columns,
                                        lo_values, hi_values, lo_inc,
                                        hi_inc)
            if latch is None:
                candidates = list(probe())
            else:
                with latch:
                    candidates = list(probe())
            return table.read_pairs(candidates, snapshot=snap)

        return victims

    def _join_step(self, tree: Operator, source: Operator, step,
                   info: PlanInfo) -> Operator:
        """Apply one ordered join step to the running left-deep tree."""
        pairs = []       # (outer index in tree, inner index in source)
        for edge in step.edges:
            if edge.left_column in tree.columns:
                tree_col, rel_col = edge.left_column, edge.right_column
            else:
                tree_col, rel_col = edge.right_column, edge.left_column
            pairs.append((tree.columns.index(tree_col),
                          source.columns.index(rel_col)))
        if step.method == "hash" and pairs:
            info.joins.append("hash_join")
            return HashJoin(tree, source, [o for o, _ in pairs],
                            [i for _, i in pairs])
        if pairs:
            info.joins.append("nested_loop")
            return NestedLoopJoin(
                tree, source,
                lambda o, i, pairs=pairs: all(
                    o[oi] is not None and o[oi] == i[ii]
                    for oi, ii in pairs))
        info.joins.append("cross(nested_loop)")
        return NestedLoopJoin(tree, source, lambda o, i: True)

    # -- join planning ----------------------------------------------------------------

    def _plan_join(self, left: Operator, right: Operator, join: ast.Join,
                   params: Sequence[Any], info: PlanInfo) -> Operator:
        combined = Scope(list(left.columns) + list(right.columns))
        if join.condition is None:
            if join.kind == "left":
                raise SQLPlanError("LEFT JOIN requires an ON condition")
            info.joins.append("cross(nested_loop)")
            return NestedLoopJoin(left, right, lambda o, i: True)
        equi = _equi_join_keys(join.condition, len(left.columns),
                               Scope(list(left.columns)), combined)
        if equi is not None:
            left_key, right_key = equi
            info.joins.append("hash_join")
            return HashJoin(left, right, [left_key],
                            [right_key - len(left.columns)],
                            left_outer=join.kind == "left")
        if join.kind == "left":
            raise SQLPlanError(
                "LEFT JOIN supports only single equality conditions")
        predicate = compile_expression(join.condition, combined, params)
        info.joins.append("nested_loop")
        return NestedLoopJoin(
            left, right,
            lambda o, i, p=predicate: p(o + i) is True)

    # -- aggregation ---------------------------------------------------------------------

    def _plan_aggregation(self, plan: Operator, scope: Scope,
                          select: ast.SelectStatement,
                          aggregates: list[ast.FunctionCall],
                          params: Sequence[Any],
                          info: PlanInfo) -> tuple[Operator, Scope]:
        info.aggregated = True
        # Pre-projection: group-by expressions first, then each aggregate's
        # input expression (COUNT(*) needs no input and gets no slot).
        pre_columns: list[str] = []
        pre_outputs: list = []
        for i, group_expr in enumerate(select.group_by):
            pre_columns.append(f"__group_{i}")
            pre_outputs.append(group_expr)
        agg_specs: list[tuple] = []
        for i, aggregate in enumerate(aggregates):
            column_name = f"__agg_{i}"
            if aggregate.argument is None:
                agg_specs.append((column_name, "count", None, False))
            else:
                input_index = len(pre_columns)
                pre_columns.append(f"__agg_in_{i}")
                pre_outputs.append(aggregate.argument)
                agg_specs.append((column_name, aggregate.name, input_index,
                                  aggregate.distinct))
        projection = compile_projection(pre_outputs, scope, params)
        plan = Project(plan, pre_columns, projection.row_exprs,
                       positions=projection.positions,
                       batch_fn=projection.batch,
                       rows_fn=projection.rows)
        plan = Aggregate(plan, list(range(len(select.group_by))), agg_specs)
        # Post-scope: group-by AST nodes and aggregate AST nodes map to
        # output slots.
        node_slots: dict = {}
        for i, group_expr in enumerate(select.group_by):
            node_slots[group_expr] = i
        for i, aggregate in enumerate(aggregates):
            node_slots[aggregate] = len(select.group_by) + i
        post_scope = Scope(list(plan.columns), node_slots)
        return plan, post_scope

    def _plan_projection(self, plan: Operator, scope: Scope,
                         select: ast.SelectStatement,
                         params: Sequence[Any]) -> tuple[Operator, Scope]:
        columns: list[str] = []
        outputs: list = []
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                raise SQLPlanError("* cannot be combined with GROUP BY")
            columns.append(item.alias or _expression_name(item.expression))
            outputs.append(item.expression)
        projection = compile_projection(outputs, scope, params)
        projected = Project(plan, columns, projection.row_exprs,
                            positions=projection.positions,
                            batch_fn=projection.batch,
                            rows_fn=projection.rows)
        # ORDER BY in aggregate queries may reference aliases or the same
        # aggregate nodes; build a scope carrying both.
        order_slots = dict(scope.node_slots)
        out_scope = Scope(columns, order_slots)
        self._alias_slots = {item.alias: i
                             for i, item in enumerate(select.items)
                             if item.alias}
        self._agg_scope = scope
        return projected, out_scope

    def _plan_order(self, plan: Operator, scope: Scope,
                    select: ast.SelectStatement,
                    params: Sequence[Any], info: PlanInfo) -> Operator:
        if not select.order_by:
            return plan
        keys: list[tuple[int, bool]] = []
        extra_exprs: list[ast.Expression] = []
        for item in select.order_by:
            expr = item.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                # Positional ORDER BY (1-based output column).
                position = expr.value - 1
                if not 0 <= position < len(plan.columns):
                    raise SQLPlanError(
                        f"ORDER BY position {expr.value} out of range")
                keys.append((position, item.descending))
                continue
            if isinstance(expr, ast.ColumnRef) and expr.table is None \
                    and expr.name in getattr(self, "_alias_slots", {}):
                keys.append((self._alias_slots[expr.name], item.descending))
                continue
            if expr in scope.node_slots and scope.node_slots[expr] < \
                    len(plan.columns):
                keys.append((scope.node_slots[expr], item.descending))
                continue
            try:
                index = scope.resolve(expr) if isinstance(
                    expr, ast.ColumnRef) else None
            except SQLPlanError:
                index = None
            if index is not None:
                keys.append((index, item.descending))
                continue
            extra_exprs.append(expr)
            keys.append((-1, item.descending))
        if extra_exprs:
            raise SQLPlanError(
                "ORDER BY expression must be a selected column, alias, or "
                "group key in aggregate queries")
        # DISTINCT (if any) already ran below this sort, so a LIMIT can
        # safely bound it to a top-k heap.
        return self._sort_operator(plan, keys, select, params, info)

    def _plan_order_then_project(
            self, plan: Operator, scope: Scope,
            select: ast.SelectStatement,
            params: Sequence[Any],
            info: PlanInfo) -> tuple[Operator, Scope]:
        """Non-aggregate path: sort on base columns (so ORDER BY can use
        non-selected columns), then project."""
        # Top-k is only legal here when no DISTINCT runs above the sort
        # (dedup after truncation would under-produce rows).
        bounded = select if not select.distinct else None
        if select.order_by:
            keys: list[tuple[int, bool]] = []
            computed: list[tuple[ast.Expression, bool]] = []
            for item in select.order_by:
                expr = item.expression
                if isinstance(expr, ast.Literal) and \
                        isinstance(expr.value, int):
                    # Positional ORDER BY refers to an output column; since
                    # sorting happens pre-projection here, route it through
                    # the select item's expression.
                    position = expr.value - 1
                    if not 0 <= position < len(select.items):
                        raise SQLPlanError(
                            f"ORDER BY position {expr.value} out of range")
                    expr = select.items[position].expression
                if isinstance(expr, ast.ColumnRef):
                    try:
                        keys.append((scope.resolve(expr), item.descending))
                        continue
                    except SQLPlanError:
                        pass
                # alias of a select item?
                if isinstance(expr, ast.ColumnRef) and expr.table is None:
                    for sel_item in select.items:
                        if sel_item.alias == expr.name:
                            expr = sel_item.expression
                            break
                computed.append((expr, item.descending))
                keys.append((-1, item.descending))
            if computed:
                # Append computed sort keys as hidden columns, sort, strip.
                base_arity = len(plan.columns)
                hidden = compile_projection(
                    list(range(base_arity)) + [e for e, _ in computed],
                    scope, params)
                augmented = Project(
                    plan,
                    list(plan.columns) + [f"__sort_{i}" for i in
                                          range(len(computed))],
                    hidden.row_exprs, positions=hidden.positions,
                    batch_fn=hidden.batch, rows_fn=hidden.rows)
                hidden_iter = iter(range(base_arity,
                                         base_arity + len(computed)))
                keys = [(k if k >= 0 else next(hidden_iter), d)
                        for k, d in keys]
                plan = self._sort_operator(augmented, keys, bounded,
                                           params, info)
                plan = Project.by_indexes(plan, list(range(base_arity)))
                plan.columns = list(scope.columns)
            else:
                plan = self._sort_operator(plan, keys, bounded, params,
                                           info)
        # Projection.
        columns: list[str] = []
        outputs: list = []
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                star = item.expression
                for i, column in enumerate(scope.columns):
                    if star.table is not None and \
                            not column.startswith(f"{star.table}."):
                        continue
                    columns.append(column.split(".", 1)[-1])
                    outputs.append(i)
                continue
            columns.append(item.alias or _expression_name(item.expression))
            outputs.append(item.expression)
        projection = compile_projection(outputs, scope, params)
        if self.engine == "vectorized" and isinstance(plan, Select):
            # Fuse filter+projection into one batch pass (both operators
            # are stateless row-wise maps, so fusion is always safe).
            info.fused = True
            projected: Operator = FusedSelectProject(
                plan.child, plan.predicate, columns, projection.row_exprs,
                batch_predicate=plan.batch_predicate,
                rows_predicate=plan.rows_predicate,
                positions=projection.positions,
                batch_fn=projection.batch,
                rows_fn=projection.rows)
        else:
            projected = Project(plan, columns, projection.row_exprs,
                                positions=projection.positions,
                                batch_fn=projection.batch,
                                rows_fn=projection.rows)
        return projected, Scope(columns)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _conjuncts(expr: ast.Expression) -> list[ast.Expression]:
    if isinstance(expr, ast.Binary) and expr.operator == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _index_match(expr: ast.Expression,
                 binding: str) -> Optional[tuple[str, str, ast.Expression]]:
    """Recognise ``col OP constant`` over this binding's columns."""
    if not isinstance(expr, ast.Binary) or \
            expr.operator not in ("=", "<", "<=", ">", ">="):
        return None
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}

    def constant(node) -> bool:
        return isinstance(node, (ast.Literal, ast.Param))

    def column(node) -> Optional[str]:
        if isinstance(node, ast.ColumnRef) and \
                (node.table is None or node.table == binding):
            return node.name
        return None

    left_col, right_col = column(expr.left), column(expr.right)
    if left_col is not None and constant(expr.right):
        return left_col, expr.operator, expr.right
    if right_col is not None and constant(expr.left):
        return right_col, flipped[expr.operator], expr.left
    return None


def _binding_of_ref(ref: ast.ColumnRef,
                    schemas: dict) -> Optional[str]:
    """Which FROM binding a column reference belongs to (None: unknown
    or ambiguous)."""
    if ref.table is not None:
        schema = schemas.get(ref.table)
        return ref.table if schema is not None \
            and ref.name in schema.names else None
    owners = [binding for binding, schema in schemas.items()
              if ref.name in schema.names]
    return owners[0] if len(owners) == 1 else None


def _conjunct_bindings(conjunct: ast.Expression,
                       schemas: dict) -> Optional[set]:
    """The set of bindings a conjunct references (None: unresolvable —
    the conjunct still executes via the residual WHERE, it just cannot
    inform pushdown or join edges)."""
    owners: set = set()
    for node in ast.walk_expression(conjunct):
        if isinstance(node, (ast.Subquery, ast.InSubquery)):
            return None
        if isinstance(node, ast.ColumnRef):
            owner = _binding_of_ref(node, schemas)
            if owner is None:
                return None
            owners.add(owner)
    return owners


def _constant_value(expr: ast.Expression,
                    params: Sequence[Any]) -> tuple[bool, Any]:
    if isinstance(expr, (ast.Literal, ast.Param)):
        return True, compile_expression(expr, Scope([]), params)(())
    return False, None


def _predicate_spec(conjunct: ast.Expression, binding: str,
                    schemas: dict,
                    params: Sequence[Any]) -> PredicateSpec:
    """Distil a single-table conjunct into estimator-friendly form."""
    if isinstance(conjunct, ast.Binary):
        match = _index_match(conjunct, binding)
        if match is not None:
            column, op_name, value_expr = match
            known, value = _constant_value(value_expr, params)
            if known:
                return PredicateSpec(column, op_name, value)
    if isinstance(conjunct, ast.Between) and not conjunct.negated \
            and isinstance(conjunct.operand, ast.ColumnRef):
        low_known, low = _constant_value(conjunct.low, params)
        high_known, high = _constant_value(conjunct.high, params)
        if low_known and high_known:
            return PredicateSpec(conjunct.operand.name, "between",
                                 low=low, high=high)
    if isinstance(conjunct, ast.IsNull) \
            and isinstance(conjunct.operand, ast.ColumnRef):
        return PredicateSpec(conjunct.operand.name,
                             "notnull" if conjunct.negated else "isnull")
    if isinstance(conjunct, ast.InList) and not conjunct.negated \
            and isinstance(conjunct.operand, ast.ColumnRef) \
            and all(isinstance(i, (ast.Literal, ast.Param))
                    for i in conjunct.items):
        return PredicateSpec(conjunct.operand.name, "in",
                             len(conjunct.items))
    return PredicateSpec("", "other")


def _join_edge(conjunct: ast.Expression, schemas: dict,
               rel_index: dict, estimators: dict) -> Optional[JoinEdge]:
    """Recognise ``a.x = b.y`` between two different bindings."""
    if not isinstance(conjunct, ast.Binary) or conjunct.operator != "=":
        return None
    if not isinstance(conjunct.left, ast.ColumnRef) or \
            not isinstance(conjunct.right, ast.ColumnRef):
        return None
    left_owner = _binding_of_ref(conjunct.left, schemas)
    right_owner = _binding_of_ref(conjunct.right, schemas)
    if left_owner is None or right_owner is None or \
            left_owner == right_owner:
        return None
    return JoinEdge(
        rel_index[left_owner], rel_index[right_owner],
        f"{left_owner}.{conjunct.left.name}",
        f"{right_owner}.{conjunct.right.name}",
        estimators[left_owner].n_distinct(conjunct.left.name),
        estimators[right_owner].n_distinct(conjunct.right.name))


def _equi_join_keys(condition: ast.Expression, left_arity: int,
                    left_scope: Scope,
                    combined: Scope) -> Optional[tuple[int, int]]:
    """Recognise ``a = b`` with one side per input."""
    if not isinstance(condition, ast.Binary) or condition.operator != "=":
        return None
    if not isinstance(condition.left, ast.ColumnRef) or \
            not isinstance(condition.right, ast.ColumnRef):
        return None
    try:
        li = combined.resolve(condition.left)
        ri = combined.resolve(condition.right)
    except SQLPlanError:
        return None
    if li < left_arity <= ri:
        return li, ri
    if ri < left_arity <= li:
        return ri, li
    return None


def _collect_aggregates(select: ast.SelectStatement) -> list[ast.FunctionCall]:
    found: list[ast.FunctionCall] = []
    seen: set = set()

    def visit(expr: Optional[ast.Expression]) -> None:
        if expr is None:
            return
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.FunctionCall) and node not in seen:
                seen.add(node)
                found.append(node)

    for item in select.items:
        if not isinstance(item.expression, ast.Star):
            visit(item.expression)
    visit(select.having)
    for order in select.order_by:
        visit(order.expression)
    return found
