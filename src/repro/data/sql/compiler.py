"""Expression compiler: SQL AST → generated Python closures.

The planner historically evaluated expressions through trees of nested
closures — every row paid one Python call per AST node.  This module
lowers each predicate/projection **once per query** into straight-line
Python source (built with ``compile``/``exec``), preserving SQL
three-valued NULL logic exactly:

- comparisons/arithmetic with NULL yield NULL,
- AND/OR short-circuit and propagate unknowns,
- ``x IN (...)`` distinguishes "not found" from "found an unknown",
- division/modulo by zero yield NULL (matching the interpreter).

Two lowerings exist per expression:

- **row mode** — ``f(row) -> value`` (or ``-> bool`` for predicates),
  used by the row engine and by batch operators without a compiled
  batch form;
- **batch mode** — the same statements inlined into a loop over a
  :class:`~repro.access.batch.RowBatch`'s column lists:
  ``f(columns, n) -> keep`` (surviving row positions) for predicates,
  ``f(columns, n) -> output columns`` for projections.

Anything the code generator cannot lower falls back to the interpreted
evaluator (:func:`repro.data.sql.planner.compile_expression`), which
remains the semantic reference — a property test asserts bit-identical
results between the two.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

from repro.data.sql import ast
from repro.errors import SQLPlanError


def _like_to_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


# Adversarial workloads can stream unbounded distinct LIKE patterns;
# past this many cached regexes new patterns compile uncached, same
# capped style as the record decoder's bitmap plan cache.
_LIKE_CACHE_LIMIT = 256


def _sql_like(value: Any, pattern: Any, _cache: dict = {}) -> Any:
    """Dynamic LIKE (non-constant pattern); regexes cached per pattern."""
    if value is None or pattern is None:
        return None
    regex = _cache.get(pattern)
    if regex is None:
        regex = _like_to_regex(pattern)
        if len(_cache) < _LIKE_CACHE_LIMIT:
            _cache[pattern] = regex
    return bool(regex.match(value))


def _sql_in(value: Any, items: tuple, negated: bool) -> Any:
    """Runtime IN over computed items, with three-valued semantics."""
    if value is None:
        return None
    unknown = False
    for candidate in items:
        if candidate is None:
            unknown = True
        elif candidate == value:
            return not negated
    if unknown:
        return None
    return negated


class _Unsupported(Exception):
    """Node shape the generator cannot lower (→ interpreted fallback)."""


_COMPARE_OPS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=",
                ">": ">", ">=": ">="}
_ARITH_OPS = {"+": "+", "-": "-", "*": "*"}


class _Emitter:
    """Accumulates generated statements with block indentation and a
    constant/helper namespace handed to ``exec``."""

    def __init__(self) -> None:
        self.prologue: list[str] = []   # once-per-call column binds
        self.outer: list[str] = []      # once-per-bind parameter loads
        self.body: list[str] = []
        self.indent = 0
        self.counter = 0
        self.namespace: dict[str, Any] = {}
        self._bound_columns: set[int] = set()

    def temp(self) -> str:
        self.counter += 1
        return f"t{self.counter}"

    def register(self, value: Any) -> str:
        """Bind a constant object into the exec namespace."""
        self.counter += 1
        name = f"k{self.counter}"
        self.namespace[name] = value
        return name

    def helper(self, name: str, fn: Callable) -> str:
        self.namespace[name] = fn
        return name

    def line(self, text: str) -> None:
        self.body.append("    " * self.indent + text)

    def block(self) -> "_Block":
        return _Block(self)

    def rendered(self, base_indent: int) -> str:
        pad = "    " * base_indent
        return "\n".join(pad + line for line in self.body)


class _Block:
    def __init__(self, emitter: _Emitter) -> None:
        self.emitter = emitter

    def __enter__(self) -> None:
        self.emitter.indent += 1

    def __exit__(self, *exc) -> None:
        self.emitter.indent -= 1


class _Codegen:
    """Lowers one expression tree; ``mode`` picks the column load form.

    With ``late=True`` parameter values are not baked in as constants:
    each ``ast.Param`` lowers to a load from the enclosing factory's
    ``params`` argument, so the generated closure is reusable across
    executions with different bindings (the statement-cache hot path).
    """

    def __init__(self, scope, params: Sequence[Any], mode: str,
                 late: bool = False) -> None:
        self.scope = scope
        self.params = params
        self.mode = mode          # "row" | "batch" | "rows"
        self.late = late
        self.em = _Emitter()
        # Static null-tracking: names known to never hold None let the
        # lowering drop ``is None`` guards (constants, comparison
        # results over non-null operands, ...).
        self.nonnull: set[str] = {"True", "False"}
        self.const_values: dict[str, Any] = {}
        self.param_locals: dict[int, str] = {}
        self.max_param = -1

    # -- constants ------------------------------------------------------------

    def const(self, value: Any) -> str:
        """Name a compile-time constant.

        The singleton keywords inline; other values bind into the exec
        namespace and — in the loop modes — are hoisted into a local
        before the loop so the hot path pays local-variable lookups.
        """
        if value is None:
            return "None"
        if value is True:
            return "True"
        if value is False:
            return "False"
        name = self.em.register(value)
        if self.mode != "row":
            local = f"{name}_"
            self.em.prologue.append(f"{local} = {name}")
            name = local
        self.nonnull.add(name)
        self.const_values[name] = value
        return name

    def _null_checks(self, *operands: str) -> list[str]:
        return [f"{v} is None" for v in operands
                if v not in self.nonnull]

    def _late_param(self, index: int) -> str:
        """Bind ``params[index]`` once per execution in the factory."""
        name = self.param_locals.get(index)
        if name is None:
            name = f"p{index}"
            self.param_locals[index] = name
            self.em.outer.append(f"{name} = params[{index}]")
            if index > self.max_param:
                self.max_param = index
        return name

    # -- loads ---------------------------------------------------------------

    def load(self, index: int) -> str:
        em = self.em
        target = em.temp()
        if self.mode in ("row", "rows"):
            em.line(f"{target} = row[{index}]")
        else:
            if index not in em._bound_columns:
                em._bound_columns.add(index)
                em.prologue.append(f"c{index} = cols[{index}]")
            em.line(f"{target} = c{index}[i]")
        return target

    # -- dispatch ------------------------------------------------------------

    def emit(self, expr: ast.Expression) -> str:
        em = self.em
        # Slot-mapped nodes (aggregate results, group keys) take
        # precedence over structural lowering, as in the interpreter.
        if expr in self.scope.node_slots:
            return self.load(self.scope.node_slots[expr])
        if isinstance(expr, ast.Literal):
            return self.const(expr.value)
        if isinstance(expr, ast.Param):
            if self.late:
                return self._late_param(expr.index)
            if expr.index >= len(self.params):
                raise SQLPlanError(
                    f"statement references parameter {expr.index} but only "
                    f"{len(self.params)} given")
            return self.const(self.params[expr.index])
        if isinstance(expr, ast.ColumnRef):
            return self.load(self.scope.resolve(expr))
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.IsNull):
            operand = self.emit(expr.operand)
            target = em.temp()
            op = "is not None" if expr.negated else "is None"
            em.line(f"{target} = {operand} {op}")
            self.nonnull.add(target)
            return target
        if isinstance(expr, ast.InList):
            return self._in_list(expr)
        if isinstance(expr, ast.Between):
            return self._between(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.FunctionCall):
            raise SQLPlanError(
                f"aggregate {expr.name}() not allowed in this context")
        if isinstance(expr, ast.Star):
            raise SQLPlanError("* not allowed in this context")
        raise _Unsupported(type(expr).__name__)

    # -- node lowerings ------------------------------------------------------

    def _guarded(self, target: str, checks: list[str],
                 expression: str) -> str:
        """Assign ``expression``, guarded by any remaining null checks;
        with none left the result is statically non-null."""
        if checks:
            self.em.line(f"{target} = None if {' or '.join(checks)} "
                         f"else {expression}")
        else:
            self.em.line(f"{target} = {expression}")
            self.nonnull.add(target)
        return target

    def _unary(self, expr: ast.Unary) -> str:
        operand = self.emit(expr.operand)
        target = self.em.temp()
        op = "not " if expr.operator == "NOT" else "-"
        return self._guarded(target, self._null_checks(operand),
                             f"{op}{operand}")

    def _between(self, expr: ast.Between) -> str:
        operand = self.emit(expr.operand)
        low = self.emit(expr.low)
        high = self.emit(expr.high)
        target = self.em.temp()
        test = f"{low} <= {operand} <= {high}"
        if expr.negated:
            test = f"not ({test})"
        else:
            test = f"({test})"
        return self._guarded(target,
                             self._null_checks(operand, low, high), test)

    def _in_list(self, expr: ast.InList) -> str:
        em = self.em
        operand = self.emit(expr.operand)
        target = em.temp()
        constant_items = all(
            isinstance(item, ast.Literal)
            or (not self.late and isinstance(item, ast.Param))
            for item in expr.items)
        if constant_items:
            values = [item.value if isinstance(item, ast.Literal)
                      else self._param_value(item) for item in expr.items]
            # NaN breaks set-membership equivalence with `==`; use the
            # runtime loop for it (and only it).
            if not any(isinstance(v, float) and v != v for v in values):
                has_null = any(v is None for v in values)
                members = self.const(
                    frozenset(v for v in values if v is not None))
                hit = "False" if expr.negated else "True"
                miss = "None" if has_null else \
                    ("True" if expr.negated else "False")
                inner = f"({hit} if {operand} in {members} else {miss})"
                checks = self._null_checks(operand)
                if checks:
                    em.line(f"{target} = None if {checks[0]} else {inner}")
                else:
                    em.line(f"{target} = {inner}")
                    if not has_null:
                        self.nonnull.add(target)
                return target
        items = [self.emit(item) for item in expr.items]
        helper = em.helper("_sql_in", _sql_in)
        joined = ", ".join(items)
        comma = "," if len(items) == 1 else ""
        em.line(f"{target} = {helper}({operand}, ({joined}{comma}), "
                f"{expr.negated})")
        return target

    def _param_value(self, param: ast.Param) -> Any:
        if param.index >= len(self.params):
            raise SQLPlanError(
                f"statement references parameter {param.index} but only "
                f"{len(self.params)} given")
        return self.params[param.index]

    def _binary(self, expr: ast.Binary) -> str:
        em = self.em
        op_name = expr.operator
        if op_name in ("AND", "OR"):
            return self._logical(expr)
        left = self.emit(expr.left)
        if op_name == "LIKE":
            return self._like(expr, left)
        right = self.emit(expr.right)
        target = em.temp()
        if op_name in _COMPARE_OPS:
            return self._guarded(target, self._null_checks(left, right),
                                 f"{left} {_COMPARE_OPS[op_name]} {right}")
        if op_name in _ARITH_OPS:
            return self._guarded(target, self._null_checks(left, right),
                                 f"{left} {_ARITH_OPS[op_name]} {right}")
        if op_name in ("/", "%"):
            checks = self._null_checks(left, right)
            # A constant non-zero divisor needs no zero guard.
            divisor = self.const_values.get(right)
            if not (right in self.const_values and divisor != 0):
                checks.append(f"{right} == 0")
            return self._guarded(target, checks,
                                 f"{left} {op_name} {right}")
        raise SQLPlanError(f"unsupported operator {op_name!r}")

    def _like(self, expr: ast.Binary, left: str) -> str:
        em = self.em
        target = em.temp()
        pattern_node = expr.right
        if isinstance(pattern_node, ast.Literal) or \
                (not self.late and isinstance(pattern_node, ast.Param)):
            pattern = pattern_node.value \
                if isinstance(pattern_node, ast.Literal) \
                else self._param_value(pattern_node)
            if pattern is None:
                em.line(f"{target} = None")
                return target
            if isinstance(pattern, str):
                regex = self.const(_like_to_regex(pattern))
                return self._guarded(target, self._null_checks(left),
                                     f"bool({regex}.match({left}))")
        right = self.emit(pattern_node)
        helper = em.helper("_sql_like", _sql_like)
        em.line(f"{target} = {helper}({left}, {right})")
        return target

    def _logical(self, expr: ast.Binary) -> str:
        """Short-circuiting AND/OR with unknown propagation, mirroring
        the interpreter's ``_sql_and``/``_sql_or`` exactly."""
        em = self.em
        left = self.emit(expr.left)
        target = em.temp()
        shortcut = "False" if expr.operator == "AND" else "True"
        combine = "and" if expr.operator == "AND" else "or"
        em.line(f"if {left} is {shortcut}:")
        with em.block():
            em.line(f"{target} = {shortcut}")
        em.line("else:")
        with em.block():
            right = self.emit(expr.right)
            em.line(f"if {right} is {shortcut}:")
            with em.block():
                em.line(f"{target} = {shortcut}")
            em.line(f"elif {left} is None or {right} is None:")
            with em.block():
                em.line(f"{target} = None")
            em.line("else:")
            with em.block():
                em.line(f"{target} = bool({left}) {combine} bool({right})")
        return target


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


# Generated source repeats heavily across statements that share a shape
# (the statement cache normalizes literals away), so code objects are
# cached by source text: ``exec`` still runs per call against a fresh
# namespace, but ``compile`` — the expensive half — is amortized.
_CODE_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_CODE_CACHE_LIMIT = 512
_CODE_LOCK = threading.Lock()


def _assemble(source: str, namespace: dict,
              name: str = "_compiled") -> Callable:
    with _CODE_LOCK:
        code = _CODE_CACHE.get(source)
        if code is not None:
            _CODE_CACHE.move_to_end(source)
    if code is None:
        code = compile(source, "<sql-compiled>", "exec")
        with _CODE_LOCK:
            if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
                _CODE_CACHE.popitem(last=False)
            _CODE_CACHE[source] = code
    exec(code, namespace)
    return namespace.pop(name)


def _bad_param_count(index: int, given: int) -> SQLPlanError:
    return SQLPlanError(
        f"statement references parameter {index} but only {given} given")


def _factory_source(gen: _Codegen, inner: str) -> str:
    """Wrap an inner closure definition (already indented one level) in
    ``def _factory(params)`` performing the once-per-bind loads."""
    lines = []
    if gen.max_param >= 0:
        helper = gen.em.helper("_bad_param_count", _bad_param_count)
        lines.append(f"    if len(params) <= {gen.max_param}:")
        lines.append(f"        raise {helper}({gen.max_param}, len(params))")
    lines.extend(f"    {stmt}" for stmt in gen.em.outer)
    return ("def _factory(params):\n"
            + "".join(line + "\n" for line in lines)
            + inner
            + "    return _compiled\n")


def _interpreted(expr: ast.Expression, scope,
                 params: Sequence[Any]) -> Callable[[tuple], Any]:
    # Imported lazily: the planner imports this module at load time.
    from repro.data.sql.planner import compile_expression
    return compile_expression(expr, scope, params)


def compile_scalar(expr: ast.Expression, scope,
                   params: Sequence[Any] = ()) -> Callable[[tuple], Any]:
    """``row -> value`` closure: generated code, interpreted fallback."""
    try:
        gen = _Codegen(scope, params, "row")
        result = gen.emit(expr)
        src = ("def _compiled(row):\n"
               + (gen.em.rendered(1) + "\n" if gen.em.body else "")
               + f"    return {result}")
        return _assemble(src, gen.em.namespace)
    except _Unsupported:
        return _interpreted(expr, scope, params)


@dataclass
class CompiledPredicate:
    """A WHERE/HAVING/ON predicate in its execution forms.

    ``row(tuple) -> bool`` keeps only rows whose value is exactly TRUE;
    ``batch(columns, n) -> list[int]`` returns surviving row positions
    from columnar inputs; ``rows(row_list) -> list[int]`` is the same
    loop over a row-backed batch (no transpose).  The loop forms are
    ``None`` when the generator could not lower the expression.
    """

    row: Callable[[tuple], bool]
    batch: Optional[Callable[[Sequence[list], int], list[int]]]
    rows: Optional[Callable[[Sequence[tuple]], list[int]]]
    compiled: bool


def compile_predicate(expr: ast.Expression, scope,
                      params: Sequence[Any] = ()) -> CompiledPredicate:
    try:
        gen = _Codegen(scope, params, "row")
        result = gen.emit(expr)
        src = ("def _compiled(row):\n"
               + (gen.em.rendered(1) + "\n" if gen.em.body else "")
               + f"    return {result} is True")
        row_fn = _assemble(src, gen.em.namespace)
        compiled = True
    except _Unsupported:
        inner = _interpreted(expr, scope, params)
        row_fn = lambda row, _p=inner: _p(row) is True  # noqa: E731
        compiled = False
    batch_fn = rows_fn = None
    if compiled:
        gen = _Codegen(scope, params, "batch")
        result = gen.emit(expr)
        prologue = "".join(f"    {line}\n" for line in gen.em.prologue)
        src = ("def _compiled(cols, n):\n"
               + prologue
               + "    keep = []\n"
               + "    _append = keep.append\n"
               + "    for i in range(n):\n"
               + (gen.em.rendered(2) + "\n" if gen.em.body else "")
               + f"        if {result} is True:\n"
               + "            _append(i)\n"
               + "    return keep")
        batch_fn = _assemble(src, gen.em.namespace)
        gen = _Codegen(scope, params, "rows")
        result = gen.emit(expr)
        prologue = "".join(f"    {line}\n" for line in gen.em.prologue)
        src = ("def _compiled(rows):\n"
               + prologue
               + "    keep = []\n"
               + "    _append = keep.append\n"
               + "    for i, row in enumerate(rows):\n"
               + (gen.em.rendered(2) + "\n" if gen.em.body else "")
               + f"        if {result} is True:\n"
               + "            _append(i)\n"
               + "    return keep")
        rows_fn = _assemble(src, gen.em.namespace)
    return CompiledPredicate(row_fn, batch_fn, rows_fn, compiled)


@dataclass
class CompiledProjection:
    """A projection list in both execution forms.

    ``row_exprs`` is one ``row -> value`` closure per output column.
    ``positions`` is set when every output is a bare column load — the
    batch engine then re-references input columns with zero copying.
    Otherwise ``batch(columns, n) -> tuple of output columns`` computes
    all outputs in one generated loop over columnar inputs, and
    ``rows(row_list)`` is the same loop over a row-backed batch
    (``None`` on fallback).
    """

    row_exprs: list
    positions: Optional[list[int]]
    batch: Optional[Callable]
    rows: Optional[Callable]


Output = Union[int, ast.Expression]


def _output_position(output: Output, scope) -> Optional[int]:
    """The input position a pure column-load output reads, else None."""
    if isinstance(output, int):
        return output
    if output in scope.node_slots:
        return scope.node_slots[output]
    if isinstance(output, ast.ColumnRef):
        return scope.resolve(output)
    return None


def compile_projection(outputs: Sequence[Output], scope,
                       params: Sequence[Any] = ()) -> CompiledProjection:
    """Lower a projection list (ints are direct input positions)."""
    row_exprs = []
    positions: Optional[list[int]] = []
    for output in outputs:
        if isinstance(output, int):
            row_exprs.append(lambda row, _i=output: row[_i])
        else:
            row_exprs.append(compile_scalar(output, scope, params))
        position = _output_position(output, scope)
        if positions is not None and position is not None:
            positions.append(position)
        else:
            positions = None
    if positions is not None:
        return CompiledProjection(row_exprs, positions, None, None)

    def lower(mode: str, header: str, loop: str) -> Callable:
        gen = _Codegen(scope, params, mode)
        results = []
        for output in outputs:
            if isinstance(output, int):
                results.append(gen.load(output))
            else:
                results.append(gen.emit(output))
        prologue = "".join(f"    {line}\n" for line in gen.em.prologue)
        declares = "".join(
            f"    out{i} = []\n    _a{i} = out{i}.append\n"
            for i in range(len(outputs)))
        appends = "".join(
            f"        _a{i}({result})\n"
            for i, result in enumerate(results))
        returns = ", ".join(f"out{i}" for i in range(len(outputs)))
        comma = "," if len(outputs) == 1 else ""
        src = (header
               + prologue + declares
               + loop
               + (gen.em.rendered(2) + "\n" if gen.em.body else "")
               + appends
               + f"    return ({returns}{comma})")
        return _assemble(src, gen.em.namespace)

    try:
        batch_fn = lower("batch", "def _compiled(cols, n):\n",
                         "    for i in range(n):\n")
        rows_fn = lower("rows", "def _compiled(rows):\n",
                        "    for row in rows:\n")
    except _Unsupported:
        batch_fn = rows_fn = None
    return CompiledProjection(row_exprs, None, batch_fn, rows_fn)


# ---------------------------------------------------------------------------
# Late-binding factories (statement cache)
# ---------------------------------------------------------------------------
#
# The ``compile_*`` entry points above bake ``params`` into the closure,
# so nothing survives the statement.  The ``*_factory`` variants lower
# the expression ONCE with parameter loads left symbolic; the result is
# a cheap ``factory(params) -> closure`` call per execution.  They are
# what the plan cache stores.


def compile_scalar_factory(expr: ast.Expression,
                           scope) -> Callable[[Sequence[Any]], Callable]:
    """``factory(params) -> (row -> value)`` with late-bound params."""
    try:
        gen = _Codegen(scope, (), "row", late=True)
        result = gen.emit(expr)
        inner = ("    def _compiled(row):\n"
                 + (gen.em.rendered(2) + "\n" if gen.em.body else "")
                 + f"        return {result}\n")
        return _assemble(_factory_source(gen, inner), gen.em.namespace,
                         name="_factory")
    except _Unsupported:
        return lambda params: _interpreted(expr, scope, params)


def compile_predicate_factory(
        expr: ast.Expression,
        scope) -> Callable[[Sequence[Any]], CompiledPredicate]:
    """``factory(params) -> CompiledPredicate`` with late-bound params."""
    try:
        gen = _Codegen(scope, (), "row", late=True)
        result = gen.emit(expr)
        inner = ("    def _compiled(row):\n"
                 + (gen.em.rendered(2) + "\n" if gen.em.body else "")
                 + f"        return {result} is True\n")
        row_factory = _assemble(_factory_source(gen, inner),
                                gen.em.namespace, name="_factory")
    except _Unsupported:
        def bind_interpreted(params: Sequence[Any]) -> CompiledPredicate:
            inner_fn = _interpreted(expr, scope, params)
            return CompiledPredicate(
                lambda row: inner_fn(row) is True, None, None, False)
        return bind_interpreted

    def loop_factory(mode: str, header: str, loop: str) -> Callable:
        gen = _Codegen(scope, (), mode, late=True)
        result = gen.emit(expr)
        inner = (header
                 + "".join(f"        {line}\n" for line in gen.em.prologue)
                 + "        keep = []\n"
                 "        _append = keep.append\n"
                 + loop
                 + (gen.em.rendered(3) + "\n" if gen.em.body else "")
                 + f"            if {result} is True:\n"
                 "                _append(i)\n"
                 "        return keep\n")
        return _assemble(_factory_source(gen, inner), gen.em.namespace,
                         name="_factory")

    batch_factory = loop_factory("batch", "    def _compiled(cols, n):\n",
                                 "        for i in range(n):\n")
    rows_factory = loop_factory("rows", "    def _compiled(rows):\n",
                                "        for i, row in enumerate(rows):\n")

    def bind(params: Sequence[Any]) -> CompiledPredicate:
        return CompiledPredicate(row_factory(params), batch_factory(params),
                                 rows_factory(params), True)
    return bind


def compile_projection_factory(
        outputs: Sequence[Output],
        scope) -> Callable[[Sequence[Any]], CompiledProjection]:
    """``factory(params) -> CompiledProjection`` with late-bound params."""
    factories: list[Callable] = []
    positions: Optional[list[int]] = []
    for output in outputs:
        if isinstance(output, int):
            factories.append(
                lambda params, _i=output: (lambda row, _j=_i: row[_j]))
        else:
            factories.append(compile_scalar_factory(output, scope))
        position = _output_position(output, scope)
        if positions is not None and position is not None:
            positions.append(position)
        else:
            positions = None
    if positions is not None:
        frozen = positions

        def bind_positions(params: Sequence[Any]) -> CompiledProjection:
            return CompiledProjection(
                [f(params) for f in factories], frozen, None, None)
        return bind_positions

    def loop_factory(mode: str, header: str, loop: str) -> Callable:
        gen = _Codegen(scope, (), mode, late=True)
        results = []
        for output in outputs:
            if isinstance(output, int):
                results.append(gen.load(output))
            else:
                results.append(gen.emit(output))
        declares = "".join(
            f"        out{i} = []\n        _a{i} = out{i}.append\n"
            for i in range(len(outputs)))
        appends = "".join(
            f"            _a{i}({result})\n"
            for i, result in enumerate(results))
        returns = ", ".join(f"out{i}" for i in range(len(outputs)))
        comma = "," if len(outputs) == 1 else ""
        inner = (header
                 + "".join(f"        {line}\n" for line in gen.em.prologue)
                 + declares
                 + loop
                 + (gen.em.rendered(3) + "\n" if gen.em.body else "")
                 + appends
                 + f"        return ({returns}{comma})\n")
        return _assemble(_factory_source(gen, inner), gen.em.namespace,
                         name="_factory")

    try:
        batch_factory = loop_factory(
            "batch", "    def _compiled(cols, n):\n",
            "        for i in range(n):\n")
        rows_factory = loop_factory(
            "rows", "    def _compiled(rows):\n",
            "        for row in rows:\n")
    except _Unsupported:
        batch_factory = rows_factory = None

    def bind(params: Sequence[Any]) -> CompiledProjection:
        return CompiledProjection(
            [f(params) for f in factories], None,
            batch_factory(params) if batch_factory else None,
            rows_factory(params) if rows_factory else None)
    return bind
