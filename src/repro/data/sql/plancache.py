"""Statement cache: soft parse, plan templates, and their validation.

Executing SQL text used to pay the full pipeline every time: tokenize,
parse, name resolution, access-path selection, and closure codegen.
This module splits that pipeline at the two natural seams:

1. **Soft parse** (:func:`fingerprint`): a token-level pass rewrites
   literals in value positions to ``?`` placeholders, producing a
   *normalized text* plus a recipe for rebuilding the full parameter
   vector from the constants and the caller's own parameters.
   ``WHERE id = 3`` and ``WHERE id = 7`` share one cache entry.

2. **Plan templates** (:func:`build_template`): for the supported
   statement shapes, planning and expression codegen run once per
   normalized text.  The template stores *late-binding factories* (see
   ``compile_*_factory`` in :mod:`repro.data.sql.compiler`) and
   instantiates a fresh operator tree per execution — so every
   execution still sees the current snapshot, session transaction,
   SSI tracking, and lock protocol.  Access paths are re-chosen per
   execution from current statistics and parameter values, which keeps
   plan dictionaries (``access_paths``, estimates, ``cost_based``)
   bit-identical to the uncached planner.

Statements the template builder cannot express (joins, aggregates,
views, subqueries, UNION, ...) become **bypass** entries: only the
parsed AST is reused and the ordinary planner runs per execution —
still skipping tokenize+parse, never risking semantic drift.

**Invalidation** is validation-based: every template entry captures the
catalog's DDL version, the per-table statistics versions, and whether
statistics existed at build time.  DDL (create/drop table, index, or
view), ``ANALYZE``, and vacuum-driven stats refreshes bump those
counters; a mismatched entry is dropped on lookup and rebuilt.
Catalog drift a version bump cannot see (a table object swapped out
from under a live template) surfaces as :class:`StalePlanError`, which
the executor turns into a drop-and-replan.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.access.operators import (
    Distinct,
    FusedSelectProject,
    Limit,
    Operator,
    Project,
    Select,
    Sort,
    Source,
    TopK,
)
from repro.data.sql import ast
from repro.data.sql.compiler import (
    compile_predicate_factory,
    compile_projection_factory,
    compile_scalar_factory,
)
from repro.data.sql.lexer import Token, tokenize
from repro.data.sql.optimizer import CostModel, choose_access_path
from repro.data.sql.planner import (
    PlanInfo,
    Planner,
    Scope,
    _conjunct_bindings,
    _conjuncts,
    _expression_name,
    _index_match,
    _predicate_spec,
)
from repro.errors import CatalogError, SQLPlanError, SQLSyntaxError


class StalePlanError(Exception):
    """A cached template no longer matches the live catalog (e.g. an
    index it relies on vanished without a version bump).  The executor
    drops the entry and re-plans through the bypass path."""


class _NotCacheable(Exception):
    """Statement shape the template builder does not support."""


# ---------------------------------------------------------------------------
# Soft parse: SQL text -> normalized text + parameter recipe
# ---------------------------------------------------------------------------


#: Leading keywords that route through the fingerprinted executor.
CACHEABLE_KEYWORDS = frozenset({"SELECT", "INSERT", "UPDATE", "DELETE"})

# Literals are rewritten to ``?`` only inside value regions: after
# FROM/WHERE/VALUES/SET, where a literal is a runtime value.  The
# rewrite stops for good at the first ORDER/GROUP/LIMIT/OFFSET —
# ``ORDER BY 2`` is a positional reference, not a value, and keeping
# LIMIT/OFFSET literal keeps top-k eligibility visible in the text.
# Literals in the SELECT item list stay literal too, so derived column
# names ("SELECT 1" names its column "1") match the uncached planner.
_ENABLE_KEYWORDS = frozenset({"FROM", "WHERE", "VALUES", "SET"})
_DISABLE_KEYWORDS = frozenset({"ORDER", "GROUP", "LIMIT", "OFFSET"})

_PLAIN_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*$")


def _number_value(text: str) -> Any:
    # Must mirror the parser's literal conversion exactly.
    return float(text) if any(c in text for c in ".eE") else int(text)


def _render_token(token: Token) -> str:
    if token.kind == "STRING":
        escaped = token.value.replace("'", "''")
        return f"'{escaped}'"
    if token.kind == "IDENT" and not _PLAIN_IDENT.match(token.value):
        return f'"{token.value}"'
    return token.value


@dataclass(frozen=True)
class Fingerprint:
    """Normalized statement text plus the parameter-merge recipe.

    ``recipe`` holds one entry per ``?`` in ``text``, in order:
    ``("c", value)`` for an auto-parameterized constant, ``("u", i)``
    for the caller's i-th own parameter.  ``bind`` merges a caller
    parameter vector into the full vector the normalized statement
    expects.
    """

    text: str
    keyword: str
    recipe: tuple[tuple[str, Any], ...]
    cacheable: bool = True

    def bind(self, params: Sequence[Any]) -> tuple:
        merged = []
        for kind, value in self.recipe:
            if kind == "c":
                merged.append(value)
            else:
                if value >= len(params):
                    # Same message the baked compiler raises, in the
                    # caller's own parameter numbering.
                    raise SQLPlanError(
                        f"statement references parameter {value} but "
                        f"only {len(params)} given")
                merged.append(params[value])
        return tuple(merged)


def fingerprint(sql: str) -> Fingerprint:
    """Tokenize ``sql`` into its normalized form (may raise
    :class:`SQLSyntaxError` on malformed text, like the parser)."""
    tokens = tokenize(sql)
    parts: list[str] = []
    recipe: list[tuple[str, Any]] = []
    keyword = tokens[0].value if tokens and tokens[0].kind == "KEYWORD" \
        else ""
    active = False
    disabled = False
    user_index = 0
    prev: Optional[Token] = None
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token.kind == "EOF":
            break
        if token.kind == "KEYWORD":
            if token.value in _DISABLE_KEYWORDS:
                active = False
                disabled = True
            elif token.value in _ENABLE_KEYWORDS and not disabled:
                active = True
            parts.append(token.value)
        elif token.kind == "PARAM":
            parts.append("?")
            recipe.append(("u", user_index))
            user_index += 1
        elif token.kind in ("NUMBER", "STRING") and active:
            value = _number_value(token.value) \
                if token.kind == "NUMBER" else token.value
            # Fold a leading unary minus into the constant, exactly
            # where the parser would (a ``-`` after a keyword or any
            # symbol except ``)`` is unary; after an operand or ``)``
            # it is binary subtraction).
            if token.kind == "NUMBER" and parts and parts[-1] == "-" \
                    and prev is not None and prev.kind == "SYMBOL" \
                    and prev.value == "-":
                before = tokens[i - 2] if i >= 2 else None
                unary = before is None or before.kind == "KEYWORD" or \
                    (before.kind == "SYMBOL" and before.value != ")")
                if unary:
                    parts.pop()
                    value = -value
            parts.append("?")
            recipe.append(("c", value))
        elif token.kind in ("NUMBER", "STRING"):
            parts.append(_render_token(token))
        elif token.kind == "SYMBOL" and token.value == ";":
            pass  # canonical text carries no trailing terminator
        else:
            parts.append(_render_token(token))
        prev = token
        i += 1
    return Fingerprint(" ".join(parts), keyword, tuple(recipe))


class FingerprintCache:
    """Raw SQL text -> :class:`Fingerprint`, bounded LRU."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, Fingerprint]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, sql: str) -> Optional[Fingerprint]:
        """The fingerprint for ``sql``; None when tokenization fails
        (the caller falls through to the parser for the real error)."""
        with self._lock:
            found = self._entries.get(sql)
            if found is not None:
                self._entries.move_to_end(sql)
                return found
        try:
            made = fingerprint(sql)
        except SQLSyntaxError:
            return None
        with self._lock:
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            self._entries[sql] = made
        return made

    def demote(self, sql: str) -> None:
        """Pin ``sql``'s fingerprint as non-cacheable (normalization
        produced text the parser rejects — the raw path must run)."""
        with self._lock:
            found = self._entries.get(sql)
            if found is not None and found.cacheable:
                self._entries[sql] = Fingerprint(
                    found.text, found.keyword, found.recipe,
                    cacheable=False)


# ---------------------------------------------------------------------------
# Statement templates
# ---------------------------------------------------------------------------


def _walk_optional(expr: Optional[ast.Expression]):
    if expr is not None:
        yield from ast.walk_expression(expr)


def _reject_subqueries(*exprs: Optional[ast.Expression]) -> None:
    for expr in exprs:
        for node in _walk_optional(expr):
            if isinstance(node, (ast.Subquery, ast.InSubquery)):
                raise _NotCacheable("subquery")


def _scalar_factory(expr: ast.Expression) -> Callable:
    """Factory for a parameter/constant-only scalar (LIMIT, probe
    values, INSERT values): ``factory(params) -> value``."""
    inner = compile_scalar_factory(expr, Scope([]))
    return lambda params: inner(params)(())


@dataclass
class SelectTemplate:
    """A reusable single-table SELECT plan.

    Name resolution, ORDER BY key mapping, and closure codegen happened
    at build time; ``instantiate`` re-runs only the per-execution
    parts — locking, snapshot capture, access-path choice (from current
    statistics and the bound parameter values), and closure binding —
    and returns a fresh operator tree plus its :class:`PlanInfo`.
    """

    table_name: str
    binding: str
    scope_columns: list[str]
    where: Optional[ast.Expression]
    conjuncts: list
    spec_ok: list[bool]
    rule_pick: Optional[tuple[str, str, Callable]]
    predicate_factory: Optional[Callable]
    projection_factory: Callable
    out_columns: list[str]
    keys: Optional[list[tuple[int, bool]]] = None
    hidden_factory: Optional[Callable] = None
    n_computed: int = 0
    distinct: bool = False
    limit_factory: Optional[Callable] = None
    offset_factory: Optional[Callable] = None
    tables: tuple[str, ...] = ()
    kind: str = "select"
    #: Adaptation class ("point" | "analytic"): routes the statement
    #: through the per-class engine override, and build-time sargable
    #: ``(column, op)`` pairs recorded on non-cost-based executions so
    #: the index advisor sees predicates even before ANALYZE.
    query_class: str = "analytic"
    observed_pairs: tuple = ()

    def execute(self, db, params: tuple, state: str):
        txn, autocommit = db._txn()
        try:
            planner = Planner(db.catalog, view_parser=db._parse_view,
                              txn=txn,
                              engine=db.engine_for(self.query_class),
                              isolation=db.isolation)
            plan, info = self.instantiate(planner, params)
            info.cached = state
            rows = plan.to_list_batched() \
                if planner.engine == "vectorized" else list(plan)
            if autocommit:
                txn.commit()
            return db._result_set(list(plan.columns), rows, info)
        except BaseException:
            if autocommit:
                txn.abort()
            raise

    # -- plan assembly (mirrors Planner.plan for the supported shape) --------

    def instantiate(self, planner: Planner,
                    params: tuple) -> tuple[Operator, PlanInfo]:
        catalog = planner.catalog
        info = PlanInfo()
        info.exec_engine = planner.engine
        info.isolation = planner.isolation
        if not catalog.has_table(self.table_name):
            raise StalePlanError(self.table_name)
        table = catalog.table(self.table_name)
        planner._lock_for_read(self.table_name, table)
        columns = [f"{self.binding}.{c}" for c in table.schema.names]
        if columns != self.scope_columns:
            raise StalePlanError(self.table_name)

        plan: Operator = self._source(planner, table, columns, params,
                                      info)
        if self.predicate_factory is not None:
            predicate = self.predicate_factory(params)
            plan = Select(plan, predicate.row,
                          batch_predicate=predicate.batch,
                          rows_predicate=predicate.rows)
        plan = self._order(plan, params, info)
        projection = self.projection_factory(params)
        if planner.engine == "vectorized" and isinstance(plan, Select):
            info.fused = True
            plan = FusedSelectProject(
                plan.child, plan.predicate, self.out_columns,
                projection.row_exprs,
                batch_predicate=plan.batch_predicate,
                rows_predicate=plan.rows_predicate,
                positions=projection.positions,
                batch_fn=projection.batch, rows_fn=projection.rows)
        else:
            plan = Project(plan, self.out_columns, projection.row_exprs,
                           positions=projection.positions,
                           batch_fn=projection.batch,
                           rows_fn=projection.rows)
        if self.distinct:
            plan = Distinct(plan)
        if self.limit_factory is not None \
                or self.offset_factory is not None:
            limit, offset = self._limit_bounds(params)
            plan = Limit(plan, limit, offset)
        return plan, info

    def _source(self, planner: Planner, table, columns: list[str],
                params: tuple, info: PlanInfo) -> Operator:
        """Access-path choice per execution: cost-based from current
        statistics when present (same gate as the planner), else the
        build-time rule match, else a sequential scan."""
        stats_for = getattr(planner.catalog, "stats_for", None)
        stats = stats_for(self.table_name) if stats_for is not None \
            else None
        if stats is not None and not (stats.row_count == 0
                                      and table.row_count):
            schemas = {self.binding: table.schema}
            specs = [
                _predicate_spec(conjunct, self.binding, schemas, params)
                for ok, conjunct in zip(self.spec_ok, self.conjuncts)
                if ok]
            cost_model = CostModel(buffer_pages=planner._buffer_pages())
            choice = choose_access_path(
                table, stats, specs, cost_model,
                columnar=planner._columnar_candidate(table))
            source = planner._choice_source(table, self.binding, choice)
            info.access_paths.append(choice.path)
            info.stores.append(
                f"{self.binding}="
                f"{'columnar' if choice.kind == 'columnar' else 'heap'}")
            info.estimates.append({
                "table": self.table_name, "binding": self.binding,
                "path": choice.path,
                "rows": round(choice.est_rows, 1),
                "cost": round(choice.cost, 2)})
            info.join_order = [self.binding]
            info.estimated_rows = round(choice.est_rows, 1)
            info.estimated_cost = round(choice.cost, 2)
            info.cost_based = True
            return source
        record = getattr(table, "record_predicate", None)
        if record is not None:
            # Non-cost-based executions: the build-time sargable pairs
            # are this statement's predicate sightings (the cost-based
            # branch above records through choose_access_path instead).
            for column, op_name in self.observed_pairs:
                record(column, op_name)
        if self.rule_pick is not None:
            column, op_name, value_factory = self.rule_pick
            index = table.index_on((column,),
                                   require_btree=op_name != "=")
            if index is None:
                raise StalePlanError(self.table_name)
            value = value_factory(params)
            if op_name == "=":
                info.access_paths.append(
                    f"index_eq({table.name}.{column})")
                info.stores.append(f"{self.binding}=heap")
                return planner._index_source(table, columns, index,
                                             "eq", value)
            lo = hi = None
            lo_inc = hi_inc = True
            if op_name in (">", ">="):
                lo, lo_inc = (value,), op_name == ">="
            else:
                hi, hi_inc = (value,), op_name == "<="
            info.access_paths.append(
                f"index_range({table.name}.{column})")
            info.stores.append(f"{self.binding}=heap")
            return planner._index_source(table, columns, index, "range",
                                         lo=lo, hi=hi,
                                         lo_inclusive=lo_inc,
                                         hi_inclusive=hi_inc)
        info.access_paths.append(f"seq_scan({self.table_name})")
        info.stores.append(f"{self.binding}=heap")
        snap = planner.snapshot
        return Source(columns, lambda: table.rows(snapshot=snap),
                      batch_factory=lambda: table.scan_batches(
                          snapshot=snap))

    def _limit_bounds(self, params: tuple) -> tuple[Optional[int], int]:
        limit = self.limit_factory(params) \
            if self.limit_factory is not None else None
        offset = self.offset_factory(params) \
            if self.offset_factory is not None else 0
        return limit, offset or 0

    def _order(self, plan: Operator, params: tuple,
               info: PlanInfo) -> Operator:
        if self.keys is None:
            return plan
        keys = list(self.keys)
        if self.hidden_factory is None:
            return self._sort(plan, keys, params, info)
        base_arity = len(self.scope_columns)
        hidden = self.hidden_factory(params)
        augmented = Project(
            plan,
            list(plan.columns) + [f"__sort_{i}"
                                  for i in range(self.n_computed)],
            hidden.row_exprs, positions=hidden.positions,
            batch_fn=hidden.batch, rows_fn=hidden.rows)
        hidden_iter = iter(range(base_arity,
                                 base_arity + self.n_computed))
        keys = [(k if k >= 0 else next(hidden_iter), d)
                for k, d in keys]
        plan = self._sort(augmented, keys, params, info)
        plan = Project.by_indexes(plan, list(range(base_arity)))
        plan.columns = list(self.scope_columns)
        return plan

    def _sort(self, child: Operator, keys: list[tuple[int, bool]],
              params: tuple, info: PlanInfo) -> Operator:
        # Same top-k gate as Planner._sort_operator (DISTINCT above the
        # sort forbids truncation).
        if not self.distinct and self.limit_factory is not None:
            limit, offset = self._limit_bounds(params)
            if isinstance(limit, int) and not isinstance(limit, bool) \
                    and limit >= 0 and isinstance(offset, int) \
                    and offset >= 0:
                info.top_k = True
                return TopK(child, keys, limit + offset)
        return Sort(child, keys)


@dataclass
class DmlTemplate:
    """A reusable UPDATE or DELETE.

    Assignment and residual-predicate closures are pre-lowered; victim
    selection still runs through :meth:`Planner.plan_dml` per execution
    so costed access paths, SIREAD ranges, and latch protocols are
    identical to the uncached executor.
    """

    kind: str                      # "update" | "delete"
    table_name: str
    where: Optional[ast.Expression]
    predicate_factory: Optional[Callable]
    #: UPDATE only: (column position, scalar factory) per assignment.
    assignment_factories: list[tuple[int, Callable]] = \
        field(default_factory=list)
    tables: tuple[str, ...] = ()
    query_class: str = "dml"

    def execute(self, db, params: tuple, state: str):
        table = db.catalog.table(self.table_name)
        txn, autocommit = db._txn()
        try:
            planner = Planner(db.catalog, view_parser=db._parse_view,
                              txn=txn,
                              engine=db.engine_for(self.query_class),
                              isolation=db.isolation)
            assignments = [(position, factory(params))
                           for position, factory
                           in self.assignment_factories]
            predicate = self.predicate_factory(params).row \
                if self.predicate_factory is not None else None
            db._lock_for_write(txn, self.table_name)
            plan = planner.plan_dml(self.table_name, self.where, params)
            if self.kind == "update":
                touched = db._apply_update(table, self.table_name,
                                           assignments, predicate, plan,
                                           txn, autocommit)
            else:
                touched = db._apply_delete(table, self.table_name,
                                           predicate, plan, txn,
                                           autocommit)
            if autocommit:
                txn.commit()
                db._maybe_autovacuum(self.table_name)
            return db._execution_result(self.kind, touched)
        except BaseException:
            if autocommit:
                txn.abort()
            raise


@dataclass
class InsertTemplate:
    """A reusable INSERT: column positions resolved and value closures
    lowered once; each execution binds parameters and appends rows
    (the ``executemany`` hot path)."""

    table_name: str
    #: Per VALUES row: list of (schema position, scalar factory).
    rows: list[list[tuple[int, Callable]]]
    arity: int
    tables: tuple[str, ...] = ()
    kind: str = "insert"
    query_class: str = "dml"

    def execute(self, db, params: tuple, state: str):
        table = db.catalog.table(self.table_name)
        if len(table.schema) != self.arity:
            raise StalePlanError(self.table_name)
        txn, autocommit = db._txn()
        try:
            db._lock_for_write(txn, self.table_name)
            inserted = 0
            for row_factories in self.rows:
                full = [None] * self.arity
                for position, factory in row_factories:
                    full[position] = factory(params)
                db._apply_insert(table, self.table_name, tuple(full),
                                 txn)
                inserted += 1
            if autocommit:
                txn.commit()
            return db._execution_result("insert", inserted)
        except BaseException:
            if autocommit:
                txn.abort()
            raise


# -- template builders --------------------------------------------------------


def build_template(statement: ast.Statement, db):
    """A reusable template for ``statement``, or None (bypass) when the
    shape is unsupported.  Build-time planner errors also yield bypass:
    the uncached path then raises the user-facing error."""
    try:
        if isinstance(statement, ast.SelectStatement):
            return _build_select(statement, db)
        if isinstance(statement, ast.Update):
            return _build_update(statement, db)
        if isinstance(statement, ast.Delete):
            return _build_delete(statement, db)
        if isinstance(statement, ast.Insert):
            return _build_insert(statement, db)
    except (_NotCacheable, SQLPlanError, CatalogError):
        return None
    return None


def _base_table(db, name: str):
    if not db.catalog.has_table(name):
        raise _NotCacheable(name)      # view, or missing (bypass errors)
    return db.catalog.table(name)


def _build_select(select: ast.SelectStatement, db) -> SelectTemplate:
    if select.table is None or select.joins or select.group_by \
            or select.having is not None:
        raise _NotCacheable("shape")
    if select.table.as_of is not None:
        raise _NotCacheable("as_of")
    for item in select.items:
        for node in _walk_optional(
                item.expression if not isinstance(item.expression,
                                                  ast.Star) else None):
            if isinstance(node, ast.FunctionCall):
                raise _NotCacheable("aggregate")
            if isinstance(node, (ast.Subquery, ast.InSubquery)):
                raise _NotCacheable("subquery")
    for order in select.order_by:
        for node in ast.walk_expression(order.expression):
            if isinstance(node,
                          (ast.FunctionCall, ast.Subquery,
                           ast.InSubquery)):
                raise _NotCacheable("order expression")
    _reject_subqueries(select.where, select.limit, select.offset)

    table = _base_table(db, select.table.name)
    binding = select.table.binding
    columns = [f"{binding}.{c}" for c in table.schema.names]
    scope = Scope(list(columns))

    conjuncts = _conjuncts(select.where) \
        if select.where is not None else []
    schemas = {binding: table.schema}
    spec_ok = [_conjunct_bindings(c, schemas) == {binding}
               for c in conjuncts]
    rule_pick = None
    observed_pairs: list[tuple[str, str]] = []
    for conjunct in conjuncts:
        match = _index_match(conjunct, binding)
        if match is None:
            continue
        column, op_name, value_expr = match
        observed_pairs.append((column, op_name))
        if table.index_on((column,),
                          require_btree=op_name != "=") is None:
            continue
        if rule_pick is None:
            rule_pick = (column, op_name, _scalar_factory(value_expr))

    predicate_factory = compile_predicate_factory(select.where, scope) \
        if select.where is not None else None

    # ORDER BY resolution (static): mirrors _plan_order_then_project.
    keys: Optional[list[tuple[int, bool]]] = None
    hidden_factory = None
    n_computed = 0
    if select.order_by:
        keys = []
        computed: list[ast.Expression] = []
        for item in select.order_by:
            expr = item.expression
            if isinstance(expr, ast.Literal) \
                    and isinstance(expr.value, int):
                position = expr.value - 1
                if not 0 <= position < len(select.items):
                    raise _NotCacheable("order position")
                expr = select.items[position].expression
            if isinstance(expr, ast.ColumnRef):
                try:
                    keys.append((scope.resolve(expr), item.descending))
                    continue
                except SQLPlanError:
                    pass
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                for sel_item in select.items:
                    if sel_item.alias == expr.name:
                        expr = sel_item.expression
                        break
            computed.append(expr)
            keys.append((-1, item.descending))
        if computed:
            n_computed = len(computed)
            hidden_factory = compile_projection_factory(
                list(range(len(columns))) + computed, scope)

    out_columns: list[str] = []
    outputs: list = []
    for item in select.items:
        if isinstance(item.expression, ast.Star):
            star = item.expression
            for i, column in enumerate(scope.columns):
                if star.table is not None and \
                        not column.startswith(f"{star.table}."):
                    continue
                out_columns.append(column.split(".", 1)[-1])
                outputs.append(i)
            continue
        out_columns.append(item.alias
                           or _expression_name(item.expression))
        outputs.append(item.expression)
    projection_factory = compile_projection_factory(outputs, scope)

    return SelectTemplate(
        table_name=select.table.name, binding=binding,
        scope_columns=columns, where=select.where,
        conjuncts=conjuncts, spec_ok=spec_ok, rule_pick=rule_pick,
        predicate_factory=predicate_factory,
        projection_factory=projection_factory, out_columns=out_columns,
        keys=keys, hidden_factory=hidden_factory,
        n_computed=n_computed, distinct=select.distinct,
        limit_factory=_scalar_factory(select.limit)
        if select.limit is not None else None,
        offset_factory=_scalar_factory(select.offset)
        if select.offset is not None else None,
        tables=(select.table.name,),
        query_class="point" if any(op == "=" for _, op
                                   in observed_pairs) else "analytic",
        observed_pairs=tuple(observed_pairs))


def _build_update(statement: ast.Update, db) -> DmlTemplate:
    _reject_subqueries(statement.where,
                       *(expr for _, expr in statement.assignments))
    table = _base_table(db, statement.table)
    scope = Scope(list(table.schema.names))
    assignment_factories = [
        (table.schema.index_of(column),
         compile_scalar_factory(expr, scope))
        for column, expr in statement.assignments]
    predicate_factory = compile_predicate_factory(statement.where,
                                                  scope) \
        if statement.where is not None else None
    return DmlTemplate("update", statement.table, statement.where,
                       predicate_factory, assignment_factories,
                       tables=(statement.table,))


def _build_delete(statement: ast.Delete, db) -> DmlTemplate:
    _reject_subqueries(statement.where)
    table = _base_table(db, statement.table)
    scope = Scope(list(table.schema.names))
    predicate_factory = compile_predicate_factory(statement.where,
                                                  scope) \
        if statement.where is not None else None
    return DmlTemplate("delete", statement.table, statement.where,
                       predicate_factory, tables=(statement.table,))


def _build_insert(statement: ast.Insert, db) -> InsertTemplate:
    table = _base_table(db, statement.table)
    schema = table.schema
    columns = statement.columns or tuple(schema.names)
    positions = [schema.index_of(c) for c in columns]
    rows: list[list[tuple[int, Callable]]] = []
    for value_row in statement.rows:
        if len(value_row) != len(columns):
            raise _NotCacheable("arity")   # bypass raises the real error
        _reject_subqueries(*value_row)
        rows.append([(position, _scalar_factory(expr))
                     for position, expr in zip(positions, value_row)])
    return InsertTemplate(statement.table, rows, len(schema),
                          tables=(statement.table,))


# ---------------------------------------------------------------------------
# The plan cache proper
# ---------------------------------------------------------------------------


@dataclass
class CacheEntry:
    """One normalized statement: its parsed AST, optional template, and
    the catalog state the template was built against."""

    text: str
    statement: ast.Statement
    template: Optional[Any]
    ddl_version: int = 0
    stats_versions: dict[str, int] = field(default_factory=dict)
    has_stats: dict[str, bool] = field(default_factory=dict)
    engine: str = ""
    isolation: str = ""
    granularity: str = ""
    query_class: str = ""
    executions: int = 0


class PlanCache:
    """Thread-safe LRU of :class:`CacheEntry` keyed by normalized text.

    Lookups validate the entry against the live catalog (DDL version,
    per-table stats versions and presence) and the session-shaping
    settings it was built under; a failed check drops the entry and
    counts an invalidation, and the caller rebuilds.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.invalidations = 0
        self.evictions = 0

    # -- validation ----------------------------------------------------------

    def _valid(self, entry: CacheEntry, db) -> bool:
        if entry.template is None:
            return True           # a bare AST depends on nothing
        # The *effective* engine for this entry's query class — an
        # adaptive per-class override flip invalidates exactly the
        # cached plans it affects.
        if entry.engine != db.engine_for(entry.query_class) \
                or entry.isolation != db.isolation \
                or entry.granularity != db.lock_granularity:
            return False
        catalog = db.catalog
        if entry.ddl_version != getattr(catalog, "ddl_version", 0):
            return False
        versions = getattr(catalog, "stats_versions", {})
        for name in entry.template.tables:
            if entry.stats_versions.get(name) != versions.get(name, 0):
                return False
            if entry.has_stats.get(name) != \
                    (catalog.stats_for(name) is not None):
                return False
        return True

    # -- lookup / store ------------------------------------------------------

    def lookup(self, text: str, db) -> Optional[CacheEntry]:
        """A valid entry for ``text``, counting hit/bypass; None on
        miss or invalidation (caller rebuilds via :meth:`store`)."""
        with self._lock:
            entry = self._entries.get(text)
            if entry is None:
                return None
            if not self._valid(entry, db):
                del self._entries[text]
                self.invalidations += 1
                return None
            self._entries.move_to_end(text)
            entry.executions += 1
            if entry.template is None:
                self.bypasses += 1
            else:
                self.hits += 1
            return entry

    def store(self, text: str, statement: ast.Statement, template,
              db) -> CacheEntry:
        entry = CacheEntry(text, statement, template)
        if template is not None:
            catalog = db.catalog
            entry.ddl_version = getattr(catalog, "ddl_version", 0)
            versions = getattr(catalog, "stats_versions", {})
            for name in template.tables:
                entry.stats_versions[name] = versions.get(name, 0)
                entry.has_stats[name] = \
                    catalog.stats_for(name) is not None
            entry.query_class = getattr(template, "query_class", "")
            entry.engine = db.engine_for(entry.query_class)
            entry.isolation = db.isolation
            entry.granularity = db.lock_granularity
        entry.executions = 1
        with self._lock:
            if template is None:
                self.bypasses += 1
            else:
                self.misses += 1
            if self.capacity <= 0:
                return entry     # cache disabled: plan, don't retain
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[text] = entry
        return entry

    def resize(self, capacity: int) -> None:
        """Change capacity online; shrinking evicts LRU immediately so
        the memory bound holds as soon as the knob lands."""
        with self._lock:
            self.capacity = capacity
            while len(self._entries) > max(capacity, 0):
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, text: str) -> None:
        """Drop one entry (stale-plan recovery)."""
        with self._lock:
            if text in self._entries:
                del self._entries[text]
                self.invalidations += 1

    def clear(self) -> None:
        """Drop everything (catalog replaced, e.g. by recovery)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "bypasses": self.bypasses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / lookups, 4)
                if lookups else 0.0,
            }
