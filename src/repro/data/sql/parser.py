"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    statement  := select | insert | update | delete | create | drop
                | PREPARE name AS statement | EXECUTE name [(args)]
                | DEALLOCATE name | BEGIN | COMMIT | ROLLBACK
    select     := SELECT [DISTINCT] items FROM table_ref join*
                  [WHERE expr] [GROUP BY exprs [HAVING expr]]
                  [ORDER BY order_items] [LIMIT expr [OFFSET expr]]
    expr       := or_expr with the usual precedence
                  (OR < AND < NOT < comparison < additive < multiplicative)
"""

from __future__ import annotations

from typing import Optional

from repro.data.sql import ast
from repro.data.sql.lexer import TokenStream, tokenize
from repro.errors import SQLSyntaxError

AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def parse(text: str) -> ast.Statement:
    """Parse a single SQL statement."""
    parser = Parser(TokenStream(tokenize(text)))
    statement = parser.statement()
    parser.stream.expect_eof()
    return statement


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used by tests and views)."""
    parser = Parser(TokenStream(tokenize(text)))
    expr = parser.expression()
    parser.stream.expect_eof()
    return expr


class Parser:
    def __init__(self, stream: TokenStream) -> None:
        self.stream = stream
        self._param_counter = 0

    # -- statements ------------------------------------------------------------

    def statement(self) -> ast.Statement:
        s = self.stream
        if s.at_keyword("SELECT"):
            return self.select_or_union()
        if s.at_keyword("INSERT"):
            return self.insert()
        if s.at_keyword("UPDATE"):
            return self.update()
        if s.at_keyword("DELETE"):
            return self.delete()
        if s.at_keyword("CREATE"):
            return self.create()
        if s.at_keyword("DROP"):
            return self.drop()
        if s.accept_keyword("EXPLAIN"):
            if s.at_keyword("UPDATE"):
                return ast.Explain(self.update())
            if s.at_keyword("DELETE"):
                return ast.Explain(self.delete())
            return ast.Explain(self.select_or_union())
        if s.accept_keyword("ANALYZE"):
            name = s.expect_ident() if s.peek().kind == "IDENT" else None
            return ast.Analyze(name)
        if s.accept_keyword("VACUUM"):
            name = s.expect_ident() if s.peek().kind == "IDENT" else None
            return ast.Vacuum(name)
        if s.accept_keyword("SCRUB"):
            name = s.expect_ident() if s.peek().kind == "IDENT" else None
            return ast.Scrub(name)
        if s.accept_keyword("PREPARE"):
            name = s.expect_ident()
            s.expect_keyword("AS")
            inner = self.statement()
            if isinstance(inner, (ast.Prepare, ast.ExecutePrepared,
                                  ast.Deallocate)):
                raise SQLSyntaxError(
                    "PREPARE body must be a plain statement")
            return ast.Prepare(name, inner)
        if s.accept_keyword("EXECUTE"):
            name = s.expect_ident()
            arguments: list[ast.Expression] = []
            if s.accept_symbol("("):
                if not s.at_symbol(")"):
                    arguments.append(self.expression())
                    while s.accept_symbol(","):
                        arguments.append(self.expression())
                s.expect_symbol(")")
            return ast.ExecutePrepared(name, tuple(arguments))
        if s.accept_keyword("DEALLOCATE"):
            return ast.Deallocate(s.expect_ident())
        if s.accept_keyword("BEGIN"):
            return ast.BeginTransaction()
        if s.accept_keyword("COMMIT"):
            return ast.CommitTransaction()
        if s.accept_keyword("ROLLBACK"):
            return ast.RollbackTransaction()
        raise SQLSyntaxError(
            f"cannot parse statement starting with {s.peek().value!r}")

    # -- SELECT -----------------------------------------------------------------

    def select_or_union(self):
        """One SELECT, possibly chained with UNION [ALL]."""
        left = self.select()
        while self.stream.accept_keyword("UNION"):
            all_rows = self.stream.accept_keyword("ALL")
            right = self.select()
            left = ast.UnionSelect(left, right, all_rows)
        return left

    def select(self) -> ast.SelectStatement:
        s = self.stream
        s.expect_keyword("SELECT")
        distinct = s.accept_keyword("DISTINCT")
        items = [self.select_item()]
        while s.accept_symbol(","):
            items.append(self.select_item())
        table = None
        joins: list[ast.Join] = []
        if s.accept_keyword("FROM"):
            table = self.table_ref()
            while True:
                kind = None
                if s.accept_keyword("JOIN"):
                    kind = "inner"
                elif s.at_keyword("INNER") and \
                        s.peek(1).value == "JOIN":
                    s.next()
                    s.next()
                    kind = "inner"
                elif s.at_keyword("LEFT"):
                    s.next()
                    s.accept_keyword("OUTER")
                    s.expect_keyword("JOIN")
                    kind = "left"
                else:
                    break
                joined = self.table_ref()
                condition = None
                if s.accept_keyword("ON"):
                    condition = self.expression()
                joins.append(ast.Join(joined, condition, kind))
        where = self.expression() if s.accept_keyword("WHERE") else None
        group_by: list[ast.Expression] = []
        having = None
        if s.accept_keyword("GROUP"):
            s.expect_keyword("BY")
            group_by.append(self.expression())
            while s.accept_symbol(","):
                group_by.append(self.expression())
            if s.accept_keyword("HAVING"):
                having = self.expression()
        order_by: list[ast.OrderItem] = []
        if s.accept_keyword("ORDER"):
            s.expect_keyword("BY")
            order_by.append(self.order_item())
            while s.accept_symbol(","):
                order_by.append(self.order_item())
        limit = offset = None
        if s.accept_keyword("LIMIT"):
            limit = self.expression()
            if s.accept_keyword("OFFSET"):
                offset = self.expression()
        return ast.SelectStatement(
            items=tuple(items), table=table, joins=tuple(joins),
            where=where, group_by=tuple(group_by), having=having,
            order_by=tuple(order_by), limit=limit, offset=offset,
            distinct=distinct)

    def select_item(self) -> ast.SelectItem:
        s = self.stream
        if s.at_symbol("*"):
            s.next()
            return ast.SelectItem(ast.Star())
        # table.* form
        if s.peek().kind == "IDENT" and s.peek(1).value == "." \
                and s.peek(2).value == "*":
            table = s.expect_ident()
            s.expect_symbol(".")
            s.expect_symbol("*")
            return ast.SelectItem(ast.Star(table))
        expr = self.expression()
        alias = None
        if s.accept_keyword("AS"):
            alias = s.expect_ident()
        elif s.peek().kind == "IDENT":
            alias = s.expect_ident()
        return ast.SelectItem(expr, alias)

    def table_ref(self) -> ast.TableRef:
        s = self.stream
        name = s.expect_ident()
        as_of = None
        if s.peek().kind == "KEYWORD" and s.peek().value == "AS" \
                and s.peek(1).kind == "KEYWORD" \
                and s.peek(1).value == "OF":
            s.next()
            s.next()
            as_of = self.expression()
        alias = None
        if s.accept_keyword("AS"):
            alias = s.expect_ident()
        elif s.peek().kind == "IDENT":
            alias = s.expect_ident()
        return ast.TableRef(name, alias, as_of)

    def order_item(self) -> ast.OrderItem:
        expr = self.expression()
        descending = False
        if self.stream.accept_keyword("DESC"):
            descending = True
        else:
            self.stream.accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    # -- DML -----------------------------------------------------------------------

    def insert(self) -> ast.Insert:
        s = self.stream
        s.expect_keyword("INSERT")
        s.expect_keyword("INTO")
        table = s.expect_ident()
        columns: list[str] = []
        if s.accept_symbol("("):
            columns.append(s.expect_ident())
            while s.accept_symbol(","):
                columns.append(s.expect_ident())
            s.expect_symbol(")")
        s.expect_keyword("VALUES")
        rows = [self.value_row()]
        while s.accept_symbol(","):
            rows.append(self.value_row())
        return ast.Insert(table, tuple(columns), tuple(rows))

    def value_row(self) -> tuple[ast.Expression, ...]:
        s = self.stream
        s.expect_symbol("(")
        values = [self.expression()]
        while s.accept_symbol(","):
            values.append(self.expression())
        s.expect_symbol(")")
        return tuple(values)

    def update(self) -> ast.Update:
        s = self.stream
        s.expect_keyword("UPDATE")
        table = s.expect_ident()
        s.expect_keyword("SET")
        assignments = [self.assignment()]
        while s.accept_symbol(","):
            assignments.append(self.assignment())
        where = self.expression() if s.accept_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def assignment(self) -> tuple[str, ast.Expression]:
        s = self.stream
        column = s.expect_ident()
        s.expect_symbol("=")
        return column, self.expression()

    def delete(self) -> ast.Delete:
        s = self.stream
        s.expect_keyword("DELETE")
        s.expect_keyword("FROM")
        table = s.expect_ident()
        where = self.expression() if s.accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    # -- DDL ------------------------------------------------------------------------

    def create(self) -> ast.Statement:
        s = self.stream
        s.expect_keyword("CREATE")
        if s.accept_keyword("TABLE"):
            return self.create_table()
        unique = s.accept_keyword("UNIQUE")
        if s.accept_keyword("INDEX"):
            return self.create_index(unique)
        if unique:
            raise SQLSyntaxError("UNIQUE must be followed by INDEX")
        if s.accept_keyword("VIEW"):
            name = s.expect_ident()
            s.expect_keyword("AS")
            query = self.select()
            return ast.CreateView(name, query)
        raise SQLSyntaxError(
            f"CREATE {s.peek().value!r} is not supported")

    def create_table(self) -> ast.CreateTable:
        s = self.stream
        if_not_exists = False
        if s.accept_keyword("IF"):
            s.expect_keyword("NOT")  # NOT is parsed as keyword
            s.expect_keyword("EXISTS")
            if_not_exists = True
        name = s.expect_ident()
        s.expect_symbol("(")
        columns = [self.column_def()]
        while s.accept_symbol(","):
            columns.append(self.column_def())
        s.expect_symbol(")")
        return ast.CreateTable(name, tuple(columns), if_not_exists)

    def column_def(self) -> ast.ColumnDef:
        s = self.stream
        name = s.expect_ident()
        token = s.peek()
        if token.kind not in ("IDENT", "KEYWORD"):
            raise SQLSyntaxError(f"expected column type after {name!r}")
        s.next()
        type_name = token.value
        not_null = primary_key = False
        while True:
            if s.accept_keyword("NOT"):
                s.expect_keyword("NULL")
                not_null = True
            elif s.accept_keyword("PRIMARY"):
                s.expect_keyword("KEY")
                primary_key = True
                not_null = True
            else:
                break
        return ast.ColumnDef(name, type_name, not_null, primary_key)

    def create_index(self, unique: bool) -> ast.CreateIndex:
        s = self.stream
        name = s.expect_ident()
        s.expect_keyword("ON")
        table = s.expect_ident()
        s.expect_symbol("(")
        columns = [s.expect_ident()]
        while s.accept_symbol(","):
            columns.append(s.expect_ident())
        s.expect_symbol(")")
        method = "btree"
        if s.accept_keyword("USING"):
            method = s.expect_ident().lower()
            if method not in ("btree", "hash"):
                raise SQLSyntaxError(
                    f"unknown index method {method!r}")
        return ast.CreateIndex(name, table, tuple(columns), unique, method)

    def drop(self) -> ast.DropStatement:
        s = self.stream
        s.expect_keyword("DROP")
        if s.accept_keyword("TABLE"):
            kind = "table"
        elif s.accept_keyword("INDEX"):
            kind = "index"
        elif s.accept_keyword("VIEW"):
            kind = "view"
        else:
            raise SQLSyntaxError(
                f"DROP {s.peek().value!r} is not supported")
        if_exists = False
        if s.accept_keyword("IF"):
            s.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropStatement(kind, s.expect_ident(), if_exists)

    # -- expressions (precedence climbing) ----------------------------------------------

    def expression(self) -> ast.Expression:
        return self.or_expr()

    def or_expr(self) -> ast.Expression:
        left = self.and_expr()
        while self.stream.accept_keyword("OR"):
            left = ast.Binary("OR", left, self.and_expr())
        return left

    def and_expr(self) -> ast.Expression:
        left = self.not_expr()
        while self.stream.accept_keyword("AND"):
            left = ast.Binary("AND", left, self.not_expr())
        return left

    def not_expr(self) -> ast.Expression:
        if self.stream.accept_keyword("NOT"):
            return ast.Unary("NOT", self.not_expr())
        return self.comparison()

    def comparison(self) -> ast.Expression:
        s = self.stream
        left = self.additive()
        if s.accept_keyword("IS"):
            negated = s.accept_keyword("NOT")
            s.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = False
        if s.at_keyword("NOT") and s.peek(1).value in ("IN", "LIKE",
                                                       "BETWEEN"):
            s.next()
            negated = True
        if s.accept_keyword("IN"):
            s.expect_symbol("(")
            if s.at_keyword("SELECT"):
                query = self.select()
                s.expect_symbol(")")
                return ast.InSubquery(left, query, negated)
            items = [self.expression()]
            while s.accept_symbol(","):
                items.append(self.expression())
            s.expect_symbol(")")
            return ast.InList(left, tuple(items), negated)
        if s.accept_keyword("LIKE"):
            expr = ast.Binary("LIKE", left, self.additive())
            return ast.Unary("NOT", expr) if negated else expr
        if s.accept_keyword("BETWEEN"):
            low = self.additive()
            s.expect_keyword("AND")
            high = self.additive()
            return ast.Between(left, low, high, negated)
        for operator in ("<=", ">=", "<>", "!=", "=", "<", ">"):
            if s.at_symbol(operator):
                s.next()
                normalised = "<>" if operator == "!=" else operator
                return ast.Binary(normalised, left, self.additive())
        return left

    def additive(self) -> ast.Expression:
        left = self.multiplicative()
        while self.stream.at_symbol("+", "-"):
            operator = self.stream.next().value
            left = ast.Binary(operator, left, self.multiplicative())
        return left

    def multiplicative(self) -> ast.Expression:
        left = self.unary()
        while self.stream.at_symbol("*", "/", "%"):
            operator = self.stream.next().value
            left = ast.Binary(operator, left, self.unary())
        return left

    def unary(self) -> ast.Expression:
        s = self.stream
        if s.accept_symbol("-"):
            operand = self.unary()
            if isinstance(operand, ast.Literal) and \
                    isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.Unary("-", operand)
        return self.primary()

    def primary(self) -> ast.Expression:
        s = self.stream
        token = s.peek()
        if token.kind == "NUMBER":
            s.next()
            text = token.value
            value = float(text) if any(c in text for c in ".eE") \
                else int(text)
            return ast.Literal(value)
        if token.kind == "STRING":
            s.next()
            return ast.Literal(token.value)
        if token.kind == "PARAM":
            s.next()
            param = ast.Param(self._param_counter)
            self._param_counter += 1
            return param
        if s.accept_keyword("NULL"):
            return ast.Literal(None)
        if s.accept_keyword("TRUE"):
            return ast.Literal(True)
        if s.accept_keyword("FALSE"):
            return ast.Literal(False)
        if token.kind == "KEYWORD" and token.value in AGGREGATES:
            s.next()
            s.expect_symbol("(")
            distinct = s.accept_keyword("DISTINCT")
            if s.accept_symbol("*"):
                argument = None
            else:
                argument = self.expression()
            s.expect_symbol(")")
            return ast.FunctionCall(token.value.lower(), argument, distinct)
        if s.accept_symbol("("):
            if s.at_keyword("SELECT"):
                query = self.select()
                s.expect_symbol(")")
                return ast.Subquery(query)
            expr = self.expression()
            s.expect_symbol(")")
            return expr
        if token.kind == "IDENT":
            name = s.expect_ident()
            if s.at_symbol(".") and s.peek(1).kind == "IDENT":
                s.next()
                column = s.expect_ident()
                return ast.ColumnRef(column, table=name)
            return ast.ColumnRef(name)
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} at {token.position}")
