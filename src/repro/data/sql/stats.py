"""Table and column statistics for cost-based query optimization.

``ANALYZE`` scans a table once and distils it into a :class:`TableStats`:
row and page counts plus, per column, null fraction, distinct-value
count, min/max, and a small equi-depth histogram.  The planner's
selectivity estimator (:mod:`repro.data.sql.optimizer`) reads these to
predict how many rows a predicate keeps and how large a join result
gets; the catalog persists them alongside the schema so estimates
survive a restart.

Statistics are a snapshot: they describe the table as of the last
ANALYZE and drift as data changes, which is the classical trade-off —
cheap to keep, refreshed explicitly.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Optional

# Number of boundary values kept per histogram.  Boundaries delimit
# HISTOGRAM_BOUNDS - 1 equi-depth buckets; small enough to serialise
# into the catalog blob, large enough to see skew.
HISTOGRAM_BOUNDS = 17


def _orderable(values: list) -> bool:
    """True when the sampled values share one comparable, JSON-safe type
    (the catalog persists histograms as JSON)."""
    kinds = {type(v) for v in values}
    if not kinds:
        return False
    if kinds <= {int, float}:
        return True
    return kinds == {str}


@dataclass
class ColumnStats:
    """Distribution summary for one column."""

    null_fraction: float = 0.0
    n_distinct: int = 0
    minimum: Any = None
    maximum: Any = None
    #: Sorted equi-depth boundary values: histogram[0] is the min,
    #: histogram[-1] the max, with (roughly) equal row counts between
    #: consecutive boundaries.  Empty when the column is unorderable.
    histogram: list = field(default_factory=list)

    # -- selectivity ------------------------------------------------------

    def eq_selectivity(self, value: Any = None) -> float:
        """Fraction of rows expected to satisfy ``col = value``."""
        if self.n_distinct <= 0:
            return 0.0
        if value is not None and self.minimum is not None:
            try:
                if value < self.minimum or value > self.maximum:
                    return 0.0
            except TypeError:
                pass
        return (1.0 - self.null_fraction) / self.n_distinct

    def fraction_below(self, value: Any, inclusive: bool = False) -> float:
        """Fraction of non-null rows with ``col < value`` (or <=).

        Interpolates inside the matching equi-depth bucket, so skew that
        the histogram captured is reflected in the estimate.
        """
        hist = self.histogram
        if len(hist) < 2:
            return 0.5
        try:
            # bisect over the boundary list handles duplicated
            # boundaries (heavy skew packs many equal values).
            locate = bisect_right if inclusive else bisect_left
            position = locate(hist, value)
        except TypeError:
            return 0.5
        if position <= 0:
            return 0.0
        if position >= len(hist):
            return 1.0
        buckets = len(hist) - 1
        lo, hi = hist[position - 1], hist[position]
        within = 0.5
        if isinstance(lo, (int, float)) and isinstance(hi, (int, float)) \
                and hi > lo:
            within = (value - lo) / (hi - lo)
        return ((position - 1) + min(max(within, 0.0), 1.0)) / buckets

    def range_selectivity(self, op: str, value: Any) -> float:
        """Selectivity of ``col OP value`` for an inequality operator."""
        not_null = 1.0 - self.null_fraction
        if op in ("<", "<="):
            fraction = self.fraction_below(value, inclusive=op == "<=")
        else:
            fraction = 1.0 - self.fraction_below(value,
                                                 inclusive=op == ">")
        return max(0.0, min(1.0, fraction)) * not_null

    def between_selectivity(self, low: Any, high: Any) -> float:
        not_null = 1.0 - self.null_fraction
        fraction = self.fraction_below(high, inclusive=True) - \
            self.fraction_below(low, inclusive=False)
        return max(0.0, min(1.0, fraction)) * not_null

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict:
        return {"null_fraction": self.null_fraction,
                "n_distinct": self.n_distinct,
                "min": self.minimum, "max": self.maximum,
                "histogram": list(self.histogram)}

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnStats":
        return cls(data.get("null_fraction", 0.0),
                   data.get("n_distinct", 0),
                   data.get("min"), data.get("max"),
                   list(data.get("histogram", ())))


@dataclass
class TableStats:
    """Per-table snapshot produced by ANALYZE."""

    row_count: int = 0
    page_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)

    def to_dict(self) -> dict:
        return {"row_count": self.row_count,
                "page_count": self.page_count,
                "columns": {name: c.to_dict()
                            for name, c in self.columns.items()}}

    @classmethod
    def from_dict(cls, data: dict) -> "TableStats":
        return cls(data.get("row_count", 0), data.get("page_count", 0),
                   {name: ColumnStats.from_dict(c)
                    for name, c in data.get("columns", {}).items()})


def build_histogram(values: list, bounds: int = HISTOGRAM_BOUNDS) -> list:
    """Equi-depth boundaries over ``values`` (sorted, non-null)."""
    if not values:
        return []
    if len(values) <= bounds:
        return list(values)
    step = (len(values) - 1) / (bounds - 1)
    return [values[round(i * step)] for i in range(bounds)]


def collect_table_stats(table) -> TableStats:
    """Scan ``table`` once and summarise it (the ANALYZE workhorse)."""
    names = list(table.schema.names)
    per_column: list[list] = [[] for _ in names]
    nulls = [0] * len(names)
    rows = 0
    for row in table.rows():
        rows += 1
        for i, value in enumerate(row):
            if value is None:
                nulls[i] += 1
            else:
                per_column[i].append(value)
    stats = TableStats(row_count=rows,
                       page_count=max(table.heap.num_pages(), 1))
    for i, name in enumerate(names):
        values = per_column[i]
        column = ColumnStats(
            null_fraction=(nulls[i] / rows) if rows else 0.0,
            n_distinct=len(set(values)))
        if values and _orderable(values):
            values.sort()
            column.minimum = values[0]
            column.maximum = values[-1]
            column.histogram = build_histogram(values)
        stats.columns[name] = column
    return stats
