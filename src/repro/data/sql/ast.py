"""SQL abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class Param:
    """A ``?`` placeholder, numbered left to right from zero."""

    index: int


@dataclass(frozen=True)
class ColumnRef:
    name: str
    table: Optional[str] = None

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star:
    table: Optional[str] = None


@dataclass(frozen=True)
class Unary:
    operator: str       # NOT, -
    operand: "Expression"


@dataclass(frozen=True)
class Binary:
    operator: str       # =, <>, <, <=, >, >=, AND, OR, +, -, *, /, LIKE
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class IsNull:
    operand: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: "Expression"
    items: tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class Between:
    operand: "Expression"
    low: "Expression"
    high: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall:
    """Aggregate call: COUNT/SUM/AVG/MIN/MAX; ``argument`` None = COUNT(*)."""

    name: str
    argument: Optional["Expression"]
    distinct: bool = False


@dataclass(frozen=True)
class Subquery:
    """Scalar subquery: ``(SELECT ...)`` used as a value (uncorrelated)."""

    query: "SelectStatement"


@dataclass(frozen=True)
class InSubquery:
    """``expr [NOT] IN (SELECT ...)`` (uncorrelated)."""

    operand: "Expression"
    query: "SelectStatement"
    negated: bool = False


Expression = Union[Literal, Param, ColumnRef, Star, Unary, Binary, IsNull,
                   InList, Between, FunctionCall, Subquery, InSubquery]


# -- statements ------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    method: str = "btree"     # btree | hash


@dataclass(frozen=True)
class CreateView:
    name: str
    query: "SelectStatement"


@dataclass(frozen=True)
class DropStatement:
    kind: str                 # table | index | view
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]      # empty = declared order
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None
    #: ``AS OF <xid>`` time-travel bound: answer from the state the
    #: named transaction observed as committed.
    as_of: Optional[Expression] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: Optional[Expression]  # None = cross join
    kind: str = "inner"              # inner | left


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    table: Optional[TableRef] = None
    joins: tuple[Join, ...] = ()
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False


@dataclass(frozen=True)
class UnionSelect:
    """``<select> UNION [ALL] <select>`` (left-associative chains fold
    into nested unions)."""

    left: Union["SelectStatement", "UnionSelect"]
    right: "SelectStatement"
    all: bool = False


@dataclass(frozen=True)
class Explain:
    """EXPLAIN <select|update|delete>: plan without executing."""

    query: Union["SelectStatement", "UnionSelect", "Update", "Delete"]


@dataclass(frozen=True)
class Analyze:
    """ANALYZE [table]: collect optimizer statistics (all tables when
    ``table`` is None)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Vacuum:
    """VACUUM [table]: prune row versions no active snapshot can see
    (all versioned tables when ``table`` is None)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Scrub:
    """SCRUB [table]: verify page checksums and repair or salvage
    corrupt pages (all tables when ``table`` is None)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class Prepare:
    """``PREPARE name AS <statement>``: register a named prepared
    statement on the session's database."""

    name: str
    statement: "Statement"
    #: Original SQL text of the inner statement, when parsed from text —
    #: lets the executor route EXECUTE through the fingerprinted plan
    #: cache instead of replanning the AST each time.
    sql: Optional[str] = None


@dataclass(frozen=True)
class ExecutePrepared:
    """``EXECUTE name [(arg, ...)]``: run a prepared statement."""

    name: str
    arguments: tuple[Expression, ...] = ()


@dataclass(frozen=True)
class Deallocate:
    """``DEALLOCATE name``: drop a prepared statement."""

    name: str


@dataclass(frozen=True)
class BeginTransaction:
    pass


@dataclass(frozen=True)
class CommitTransaction:
    pass


@dataclass(frozen=True)
class RollbackTransaction:
    pass


Statement = Union[CreateTable, CreateIndex, CreateView, DropStatement,
                  Insert, Update, Delete, SelectStatement, UnionSelect,
                  Explain, Analyze, Vacuum, Scrub, Prepare,
                  ExecutePrepared,
                  Deallocate, BeginTransaction, CommitTransaction,
                  RollbackTransaction]


def walk_expression(expr: Expression):
    """Yield ``expr`` and every sub-expression (pre-order)."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expression(expr.left)
        yield from walk_expression(expr.right)
    elif isinstance(expr, IsNull):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, InList):
        yield from walk_expression(expr.operand)
        for item in expr.items:
            yield from walk_expression(item)
    elif isinstance(expr, Between):
        yield from walk_expression(expr.operand)
        yield from walk_expression(expr.low)
        yield from walk_expression(expr.high)
    elif isinstance(expr, FunctionCall) and expr.argument is not None:
        yield from walk_expression(expr.argument)
    elif isinstance(expr, InSubquery):
        yield from walk_expression(expr.operand)
