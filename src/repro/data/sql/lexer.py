"""SQL tokenizer for the Data Services query subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT",
    "OUTER", "ON", "AS", "AND", "OR", "NOT", "IS", "NULL", "IN", "LIKE",
    "BETWEEN", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "DROP", "TABLE", "INDEX", "UNIQUE", "VIEW", "PRIMARY",
    "KEY", "TRUE", "FALSE", "BEGIN", "COMMIT", "ROLLBACK", "USING",
    "IF", "EXISTS", "COUNT", "SUM", "AVG", "MIN", "MAX",
    "EXPLAIN", "UNION", "ALL", "ANALYZE", "VACUUM", "SCRUB",
    "PREPARE", "EXECUTE", "DEALLOCATE", "OF",
}

SYMBOLS = ("<>", "<=", ">=", "!=", "(", ")", ",", "*", "+", "-", "/",
           "=", "<", ">", ".", "?", ";", "%")


@dataclass(frozen=True)
class Token:
    kind: str       # KEYWORD, IDENT, NUMBER, STRING, SYMBOL, PARAM, EOF
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch == "-" and text[pos:pos + 2] == "--":  # line comment
            end = text.find("\n", pos)
            pos = length if end == -1 else end + 1
            continue
        if ch == "'":
            value, pos = _read_string(text, pos)
            tokens.append(Token("STRING", value, pos))
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length
                            and text[pos + 1].isdigit()):
            value, pos = _read_number(text, pos)
            tokens.append(Token("NUMBER", value, pos))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        if ch == '"':  # quoted identifier
            end = text.find('"', pos + 1)
            if end == -1:
                raise SQLSyntaxError(f"unterminated identifier at {pos}")
            tokens.append(Token("IDENT", text[pos + 1:end], pos))
            pos = end + 1
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, pos):
                kind = "PARAM" if symbol == "?" else "SYMBOL"
                tokens.append(Token(kind, symbol, pos))
                pos += len(symbol)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r} at {pos}")
    tokens.append(Token("EOF", "", length))
    return tokens


def _read_string(text: str, pos: int) -> tuple[str, int]:
    out = []
    pos += 1  # opening quote
    while pos < len(text):
        ch = text[pos]
        if ch == "'":
            if text[pos + 1:pos + 2] == "'":  # escaped quote
                out.append("'")
                pos += 2
                continue
            return "".join(out), pos + 1
        out.append(ch)
        pos += 1
    raise SQLSyntaxError("unterminated string literal")


def _read_number(text: str, pos: int) -> tuple[str, int]:
    start = pos
    seen_dot = False
    while pos < len(text):
        ch = text[pos]
        if ch.isdigit():
            pos += 1
        elif ch == "." and not seen_dot:
            seen_dot = True
            pos += 1
        elif ch in "eE" and pos + 1 < len(text) and \
                (text[pos + 1].isdigit() or text[pos + 1] in "+-"):
            pos += 2
            while pos < len(text) and text[pos].isdigit():
                pos += 1
            break
        else:
            break
    return text[start:pos], pos


class TokenStream:
    """Cursor over tokens with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[idx]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._index += 1
        return token

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value in keywords

    def at_symbol(self, *symbols: str) -> bool:
        token = self.peek()
        return token.kind == "SYMBOL" and token.value in symbols

    def accept_keyword(self, *keywords: str) -> bool:
        if self.at_keyword(*keywords):
            self.next()
            return True
        return False

    def accept_symbol(self, *symbols: str) -> bool:
        if self.at_symbol(*symbols):
            self.next()
            return True
        return False

    def expect_keyword(self, keyword: str) -> Token:
        if not self.at_keyword(keyword):
            raise SQLSyntaxError(
                f"expected {keyword}, found {self.peek().value!r} "
                f"at {self.peek().position}")
        return self.next()

    def expect_symbol(self, symbol: str) -> Token:
        if not self.at_symbol(symbol):
            raise SQLSyntaxError(
                f"expected {symbol!r}, found {self.peek().value!r} "
                f"at {self.peek().position}")
        return self.next()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "IDENT":
            # Allow non-reserved-ish keywords as identifiers where harmless.
            raise SQLSyntaxError(
                f"expected identifier, found {token.value!r} "
                f"at {token.position}")
        self.next()
        return token.value

    def expect_eof(self) -> None:
        self.accept_symbol(";")
        if self.peek().kind != "EOF":
            raise SQLSyntaxError(
                f"unexpected trailing input {self.peek().value!r}")
