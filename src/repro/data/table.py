"""Tables: heap storage + schema + index maintenance.

A :class:`Table` owns one heap file and any number of secondary indexes
(B+-tree or extendible hash).  The primary key, when declared, is a unique
B+-tree index created automatically.  All mutations keep every index
consistent; uniqueness is enforced at insert/update time.

Index keys use the order-preserving key codec; non-unique indexes append
the record's RID to the key, making entries unique while keeping them
clustered by key prefix (see :mod:`repro.access.keycodec`).
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.access.batch import BATCH_SIZE, RowBatch
from repro.access.btree import BPlusTree
from repro.faults.crashpoints import maybe_crash
from repro.access.hash_index import ExtendibleHashIndex
from repro.access.heap_file import RID, HeapFile
from repro.access.keycodec import encode_key
from repro.data.schema import Schema
from repro.errors import CatalogError, DuplicateKeyError, SchemaError
from repro.storage.page_manager import PageManager

_RID = struct.Struct("<II")


def encode_rid(rid: RID) -> bytes:
    return _RID.pack(rid.page_no, rid.slot)


def decode_rid(data: bytes) -> RID:
    page_no, slot = _RID.unpack(data)
    return RID(page_no, slot)


@dataclass
class IndexDef:
    """Index metadata as stored in the catalog."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    method: str = "btree"        # btree | hash

    def to_dict(self) -> dict:
        return {"name": self.name, "table": self.table,
                "columns": list(self.columns), "unique": self.unique,
                "method": self.method}

    @classmethod
    def from_dict(cls, data: dict) -> "IndexDef":
        return cls(data["name"], data["table"], tuple(data["columns"]),
                   data.get("unique", False), data.get("method", "btree"))


class TableIndex:
    """One physical index attached to a table."""

    def __init__(self, definition: IndexDef, schema: Schema,
                 pages: PageManager, file_id: int) -> None:
        self.definition = definition
        self.column_indexes = [schema.index_of(c)
                               for c in definition.columns]
        self.pages = pages
        self.file_id = file_id
        if definition.method == "btree":
            self.tree: Optional[BPlusTree] = BPlusTree(pages, file_id)
            self.hash: Optional[ExtendibleHashIndex] = None
        elif definition.method == "hash":
            self.tree = None
            self.hash = ExtendibleHashIndex()
        else:
            raise CatalogError(
                f"unknown index method {definition.method!r}")

    # -- key construction ------------------------------------------------------

    def key_values(self, row: Sequence[Any]) -> tuple:
        return tuple(row[i] for i in self.column_indexes)

    def _entry_key(self, row: Sequence[Any], rid: RID) -> bytes:
        key = encode_key(self.key_values(row))
        if not self.definition.unique:
            key += encode_rid(rid)
        return key

    # -- maintenance ---------------------------------------------------------------

    def insert(self, row: Sequence[Any], rid: RID) -> None:
        key = self._entry_key(row, rid)
        value = encode_rid(rid) if self.definition.unique else b""
        index = self.tree if self.tree is not None else self.hash
        try:
            index.insert(key, value)
        except DuplicateKeyError:
            raise DuplicateKeyError(
                f"duplicate key {self.key_values(row)!r} in unique index "
                f"{self.definition.name!r}") from None

    def delete(self, row: Sequence[Any], rid: RID) -> None:
        key = self._entry_key(row, rid)
        index = self.tree if self.tree is not None else self.hash
        index.delete(key)

    def would_conflict(self, row: Sequence[Any]) -> bool:
        """True when inserting ``row`` would violate uniqueness."""
        if not self.definition.unique:
            return False
        key = encode_key(self.key_values(row))
        if self.tree is not None:
            return self.tree.get(key) is not None
        return self.hash.get(key) is not None

    # -- lookups ----------------------------------------------------------------------

    def lookup_eq(self, values: tuple) -> list[RID]:
        key = encode_key(values)
        if self.definition.unique:
            if self.tree is not None:
                found = self.tree.get(key)
            else:
                found = self.hash.get(key)
            return [decode_rid(found)] if found is not None else []
        if self.tree is None:
            raise CatalogError("hash indexes must be unique in this engine")
        return [decode_rid(entry_key[len(key):])
                for entry_key, _ in self.tree.prefix_scan(key)]

    def range_scan(self, lo: Optional[tuple], hi: Optional[tuple],
                   lo_inclusive: bool = True,
                   hi_inclusive: bool = False) -> Iterator[RID]:
        if self.tree is None:
            raise CatalogError(
                f"index {self.definition.name!r} is hash-based; "
                f"range scans need a btree index")
        lo_key = encode_key(lo) if lo is not None else None
        hi_key = encode_key(hi) if hi is not None else None
        if hi_key is not None and hi_inclusive and not self.definition.unique:
            # Non-unique entries carry a RID suffix; extend the bound so
            # every entry with the hi key prefix is included.
            hi_key += b"\xff" * (_RID.size + 1)
        for entry_key, value in self.tree.items(
                lo=lo_key, hi=hi_key,
                lo_inclusive=lo_inclusive, hi_inclusive=hi_inclusive):
            if self.definition.unique:
                yield decode_rid(value)
            else:
                yield decode_rid(entry_key[-_RID.size:])

    def __len__(self) -> int:
        index = self.tree if self.tree is not None else self.hash
        return len(index)


class Table:
    """A logical table bound to its physical storage."""

    def __init__(self, name: str, schema: Schema, heap: HeapFile) -> None:
        self.name = name
        self.schema = schema
        self.heap = heap
        self.indexes: dict[str, TableIndex] = {}
        self.row_count = 0
        # Short-term latch serialising index maintenance + row counting:
        # row-level transaction locks admit concurrent writers to one
        # table, but the in-memory index structures are not thread-safe.
        self._latch = threading.RLock()

    # -- index management -----------------------------------------------------------

    def attach_index(self, index: TableIndex,
                     populate: bool = False) -> None:
        if index.definition.name in self.indexes:
            raise CatalogError(
                f"index {index.definition.name!r} already attached")
        if populate:
            for rid, row in self.scan():
                index.insert(row, rid)
        self.indexes[index.definition.name] = index

    def detach_index(self, name: str) -> TableIndex:
        try:
            return self.indexes.pop(name)
        except KeyError:
            raise CatalogError(f"no index {name!r} on {self.name}") from None

    def index_on(self, columns: tuple[str, ...],
                 require_btree: bool = False) -> Optional[TableIndex]:
        """An index whose key is exactly ``columns`` (used by the planner)."""
        for index in self.indexes.values():
            if index.definition.columns == columns:
                if require_btree and index.tree is None:
                    continue
                return index
        return None

    # -- mutations ----------------------------------------------------------------------

    def insert(self, row: Sequence[Any], txn=None, lock_row=None) -> RID:
        """Insert one row.

        When ``txn`` is given the inverse operation is registered with it
        *immediately after* the heap placement — before row locking and
        index maintenance, either of which may raise — so an abort always
        knows how to take the row back out.  ``lock_row(rid)`` — when
        given — runs under the table latch, so the caller acquires its
        row lock before any concurrent scan can see (and lock) the new
        RID.
        """
        validated = self.schema.validate(row)
        with self._latch:
            for index in self.indexes.values():
                if index.would_conflict(validated):
                    raise DuplicateKeyError(
                        f"{self.name}: duplicate key "
                        f"{index.key_values(validated)!r} for unique index "
                        f"{index.definition.name!r}")
            rid = self.heap.insert(self.schema.codec.encode(validated),
                                   txn=txn)
            # The undo tracks how far the insert got: if lock_row (which
            # may hit a routine deadlock/timeout) or a crash point stops
            # us before index maintenance, the rollback must remove only
            # the heap record — index.delete of never-inserted entries
            # would itself fail and leave a phantom row behind.
            progress = {"indexed": False}
            if txn is not None:
                txn.on_abort(lambda: self._undo_insert(rid, progress, txn))
            if lock_row is not None:
                lock_row(rid)
            maybe_crash("table.index")
            for index in self.indexes.values():
                index.insert(validated, rid)
            progress["indexed"] = True
            self.row_count += 1
        return rid

    def _undo_insert(self, rid: RID, progress: dict, txn) -> None:
        with self._latch:
            if progress["indexed"]:
                self.delete(rid, txn=txn)
            else:
                self.heap.delete(rid, txn=txn)

    def read(self, rid: RID) -> tuple:
        return self.schema.decode(self.heap.read(rid))

    def delete(self, rid: RID, txn=None) -> tuple:
        with self._latch:
            row = self.read(rid)
            for index in self.indexes.values():
                index.delete(row, rid)
            self.heap.delete(rid, txn=txn)
            if txn is not None:
                txn.on_abort(lambda: self.insert(row, txn=txn))
            self.row_count -= 1
        return row

    def update(self, rid: RID, new_row: Sequence[Any], txn=None,
               lock_row=None) -> RID:
        """Rewrite one row.

        The inverse (restore the old row at its current RID) registers
        with ``txn`` right after the heap rewrite, before locking or
        index maintenance can fail.  When the record moves (does not fit
        in place), ``lock_row(new_rid)`` runs under the table latch so
        the caller's lock follows the row to its new RID before anyone
        else can claim it.
        """
        validated = self.schema.validate(new_row)
        with self._latch:
            old_row = self.read(rid)
            for index in self.indexes.values():
                if index.definition.unique and \
                        index.key_values(validated) != \
                        index.key_values(old_row) \
                        and index.would_conflict(validated):
                    raise DuplicateKeyError(
                        f"{self.name}: duplicate key "
                        f"{index.key_values(validated)!r} for unique index "
                        f"{index.definition.name!r}")
            for index in self.indexes.values():
                index.delete(old_row, rid)
            new_rid = self.heap.update(
                rid, self.schema.codec.encode(validated), txn=txn)
            progress = {"indexed": False}
            if txn is not None:
                txn.on_abort(lambda: self._undo_update(
                    new_rid, old_row, progress, txn))
            if new_rid != rid and lock_row is not None:
                lock_row(new_rid)
            maybe_crash("table.index")
            for index in self.indexes.values():
                index.insert(validated, new_rid)
            progress["indexed"] = True
        return new_rid

    def _undo_update(self, rid: RID, old_row: tuple, progress: dict,
                     txn) -> None:
        with self._latch:
            if progress["indexed"]:
                self.update(rid, old_row, txn=txn)
            else:
                # The new index entries were never inserted (the old ones
                # are already gone): restore the heap payload and re-key
                # the indexes with the old row directly.
                back_rid = self.heap.update(
                    rid, self.schema.codec.encode(old_row), txn=txn)
                for index in self.indexes.values():
                    index.insert(old_row, back_rid)

    # -- reads -------------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[RID, tuple]]:
        for rid, payload in self.heap.scan():
            yield rid, self.schema.decode(payload)

    def rows(self) -> Iterator[tuple]:
        for _, row in self.scan():
            yield row

    def scan_batches(self, batch_rows: int = BATCH_SIZE
                     ) -> Iterator[RowBatch]:
        """Columnar full scan: one pin per page, bulk slot sweep, and
        plan-cached decode of each run (the vectorized engine's leaf)."""
        codec = self.schema.codec
        for payloads in self.heap.scan_payload_batches(batch_rows):
            yield codec.decode_batch(payloads)

    def read_many(self, rids: Iterable[RID]) -> Iterator[tuple]:
        """Decode records in RID order, pinning once per same-page run."""
        decode = self.schema.decode
        for payload in self.heap.read_many(rids):
            yield decode(payload)

    def read_batches(self, rids: Iterable[RID],
                     batch_rows: int = BATCH_SIZE) -> Iterator[RowBatch]:
        """Batched index-scan fetch: RID runs are read under one pin per
        page and decoded in bulk, preserving RID order."""
        codec = self.schema.codec
        payloads: list[bytes] = []
        for payload in self.heap.read_many(rids):
            payloads.append(payload)
            if len(payloads) >= batch_rows:
                yield codec.decode_batch(payloads)
                payloads = []
        if payloads:
            yield codec.decode_batch(payloads)

    def count(self) -> int:
        return self.row_count

    def properties(self) -> dict:
        """Functional figures for the monitoring service."""
        return {
            "rows": self.row_count,
            "pages": self.heap.num_pages(),
            "indexes": sorted(self.indexes),
            "fragmentation": self.heap.fragmentation(),
        }
