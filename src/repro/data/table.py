"""Tables: heap storage + schema + index maintenance + multi-versioning.

A :class:`Table` owns one heap file and any number of secondary indexes
(B+-tree or extendible hash).  The primary key, when declared, is a unique
B+-tree index created automatically.  All mutations keep every index
consistent; uniqueness is enforced at insert/update time.

Index keys use the order-preserving key codec; non-unique indexes append
the record's RID to the key, making entries unique while keeping them
clustered by key prefix (see :mod:`repro.access.keycodec`).

**Versioned tables** (``versioned=True``, the snapshot-isolation default)
store every heap record behind a 25-byte version header
(:mod:`repro.access.version`).  The record at a row's original RID is the
*head* of its version chain — indexes and row locks always address the
head.  An update copies the pre-image into an ``OLD`` record (stamped
``xmax = updater``) and rewrites the head in place; a delete merely
stamps the head's ``xmax``.  Reads carry a
:class:`~repro.data.transactions.Snapshot` and filter versions by pure
header arithmetic — no locks — walking the prev chain (under the table
latch, so writers/vacuum cannot dangle a pointer mid-walk) only when the
head itself is invisible.  Superseded versions live until
:mod:`repro.storage.vacuum` prunes everything older than the oldest
active snapshot.

**Version-aware index entries.**  On versioned tables, index entries are
retained until vacuum rather than maintained eagerly: an UPDATE that
changes an indexed key *adds* an entry for the new key and keeps the
superseded-key entry pointing at the head RID, and a DELETE leaves every
entry in place — so a snapshot reader probing by any key a visible
version ever carried still finds the row.  Index probes therefore return
*candidate* head RIDs; the fetch path re-checks each candidate's version
chain against the statement :class:`~repro.data.transactions.Snapshot`,
and the residual WHERE re-check above every index source discards stale
entries whose visible version no longer carries the probed key — index
paths and sequential scans answer identically under any snapshot.
Unique entries hold a small *list* of head RIDs (a key being recycled or
in key-flight holds two transiently); uniqueness is enforced logically by
:meth:`Table._check_unique` against latest *visible* versions plus
in-flight writers, not by raw index membership.
:mod:`repro.storage.vacuum` unlinks a superseded-key entry once the
superseding version falls below the snapshot horizon.  The rare head
rewrite that overflows its page moves the head to a fresh RID and
re-points every retained entry at it under the table latch; a scan
racing that exact move can miss the row for one statement (2PL's S
locks used to exclude this window; redirect tombstones would close it).
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.access.batch import BATCH_SIZE, RowBatch
from repro.access.btree import BPlusTree
from repro.faults.crashpoints import maybe_crash
from repro.access.hash_index import ExtendibleHashIndex
from repro.access.heap_file import RID, HeapFile
from repro.access.keycodec import encode_key
from repro.access.version import (
    FLAG_HEAD,
    HEADER_SIZE,
    VERSION_HEADER,
    bulk_headers,
    pack_version,
    restamp,
    unpack_version,
)
from repro.access.record import RecordCodec
from repro.data.schema import Schema
from repro.data.transactions import FROZEN_SNAPSHOT, Snapshot
from repro.errors import (
    CatalogError,
    DuplicateKeyError,
    KeyNotFoundError,
    PageLayoutError,
    SchemaError,
    SerializationError,
)
from repro.storage.page_manager import PageManager
from repro.storage.wal import OP_VERSION_CREATE, OP_VERSION_STAMP

_RID = struct.Struct("<II")


def encode_rid(rid: RID) -> bytes:
    return _RID.pack(rid.page_no, rid.slot)


def decode_rid(data: bytes) -> RID:
    page_no, slot = _RID.unpack(data)
    return RID(page_no, slot)


#: Neutral header prepended to chain-walked tuple bytes so one offset
#: codec decodes fast-path and walked payloads alike (xmin = 0 means
#: "bootstrap, visible to all" — the header is never re-examined).
_WALKED_HEADER = pack_version(FLAG_HEAD, 0, 0)


@dataclass
class IndexDef:
    """Index metadata as stored in the catalog."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    method: str = "btree"        # btree | hash

    def to_dict(self) -> dict:
        return {"name": self.name, "table": self.table,
                "columns": list(self.columns), "unique": self.unique,
                "method": self.method}

    @classmethod
    def from_dict(cls, data: dict) -> "IndexDef":
        return cls(data["name"], data["table"], tuple(data["columns"]),
                   data.get("unique", False), data.get("method", "btree"))


class TableIndex:
    """One physical index attached to a table.

    On *versioned* tables (``self.versioned``, set by
    :meth:`Table.attach_index`) entries are retained until vacuum and
    probes return candidate head RIDs whose visibility the fetch path
    re-checks, so maintenance is idempotent per ``(key, RID)`` pair:
    unique entries hold a packed *list* of RIDs (two rows may hold one
    key transiently while a recycle or key-move is in flight), inserts
    of an already-present pair are no-ops, and deletes are RID-aware.
    """

    def __init__(self, definition: IndexDef, schema: Schema,
                 pages: PageManager, file_id: int) -> None:
        self.definition = definition
        self.column_indexes = [schema.index_of(c)
                               for c in definition.columns]
        self.pages = pages
        self.file_id = file_id
        #: Retained-entry (version-aware) mode; wired from the owning
        #: table's ``versioned`` flag at attach time.
        self.versioned = False
        #: Advisory probe counter (lock-free; feeds the index advisor's
        #: drop rule — an index nobody probes is paying rent for
        #: nothing on a write-heavy table).
        self.probes = 0
        if definition.method == "btree":
            self.tree: Optional[BPlusTree] = BPlusTree(pages, file_id)
            self.hash: Optional[ExtendibleHashIndex] = None
        elif definition.method == "hash":
            self.tree = None
            self.hash = ExtendibleHashIndex()
        else:
            raise CatalogError(
                f"unknown index method {definition.method!r}")

    # -- key construction ------------------------------------------------------

    def key_values(self, row: Sequence[Any]) -> tuple:
        return tuple(row[i] for i in self.column_indexes)

    def _entry_key(self, values: tuple, rid: RID) -> bytes:
        key = encode_key(values)
        if not self.definition.unique:
            key += encode_rid(rid)
        return key

    @staticmethod
    def _rid_chunks(value: bytes) -> list[bytes]:
        """Split a multi-RID unique entry value into its packed RIDs."""
        return [value[off:off + _RID.size]
                for off in range(0, len(value), _RID.size)]

    @classmethod
    def _rid_list(cls, value: bytes) -> list[RID]:
        """Decode a multi-RID unique entry value (8 bytes per RID)."""
        return [decode_rid(chunk) for chunk in cls._rid_chunks(value)]

    # -- maintenance ---------------------------------------------------------------

    def insert(self, row: Sequence[Any], rid: RID) -> bool:
        return self.insert_values(self.key_values(row), rid)

    def insert_values(self, values: tuple, rid: RID) -> bool:
        """Add the entry for ``(values, rid)``.

        Returns ``True`` when a new physical entry (or RID) was added,
        ``False`` when the pair was already present — possible only in
        versioned mode, where an update back to a key an older retained
        version still carries must be a no-op.
        """
        index = self.tree if self.tree is not None else self.hash
        if self.definition.unique and self.versioned:
            key = encode_key(values)
            packed = encode_rid(rid)
            existing = index.get(key)
            if existing is None:
                index.insert(key, packed)
                return True
            if packed in self._rid_chunks(existing):
                return False
            index.insert(key, existing + packed, replace=True)
            return True
        key = self._entry_key(values, rid)
        value = encode_rid(rid) if self.definition.unique else b""
        try:
            index.insert(key, value)
        except DuplicateKeyError:
            if self.versioned:
                return False   # retained entry already present
            raise DuplicateKeyError(
                f"duplicate key {values!r} in unique index "
                f"{self.definition.name!r}") from None
        return True

    def delete(self, row: Sequence[Any], rid: RID) -> None:
        self.delete_values(self.key_values(row), rid)

    def delete_values(self, values: tuple, rid: RID) -> None:
        """Remove the entry for ``(values, rid)``; raises
        :class:`KeyNotFoundError` when no such pair exists.  RID-aware
        in versioned mode: a multi-RID unique entry only sheds the given
        RID, so unlinking a dead former holder never orphans a live row
        that recycled the key."""
        index = self.tree if self.tree is not None else self.hash
        if self.definition.unique and self.versioned:
            key = encode_key(values)
            existing = index.get(key)
            packed = encode_rid(rid)
            if existing is not None:
                chunks = self._rid_chunks(existing)
                if packed in chunks:
                    chunks.remove(packed)
                    if chunks:
                        index.insert(key, b"".join(chunks), replace=True)
                    else:
                        index.delete(key)
                    return
            raise KeyNotFoundError(
                f"no entry {values!r} -> {rid} in unique index "
                f"{self.definition.name!r}")
        index.delete(self._entry_key(values, rid))

    def would_conflict(self, row: Sequence[Any]) -> bool:
        """True when inserting ``row`` would violate uniqueness (raw
        membership — meaningful only for unversioned tables, where an
        entry implies a live row)."""
        if not self.definition.unique:
            return False
        key = encode_key(self.key_values(row))
        if self.tree is not None:
            return self.tree.get(key) is not None
        return self.hash.get(key) is not None

    # -- lookups ----------------------------------------------------------------------

    def lookup_eq(self, values: tuple) -> list[RID]:
        """Candidate head RIDs for an equality probe.  On versioned
        tables stale candidates are expected: callers re-check the
        version chain against their snapshot and re-check the key."""
        self.probes += 1
        key = encode_key(values)
        if self.definition.unique:
            if self.tree is not None:
                found = self.tree.get(key)
            else:
                found = self.hash.get(key)
            if found is None:
                return []
            if self.versioned:
                return self._rid_list(found)
            return [decode_rid(found)]
        if self.tree is None:
            raise CatalogError("hash indexes must be unique in this engine")
        return [decode_rid(entry_key[len(key):])
                for entry_key, _ in self.tree.prefix_scan(key)]

    def range_scan(self, lo: Optional[tuple], hi: Optional[tuple],
                   lo_inclusive: bool = True,
                   hi_inclusive: bool = False) -> Iterator[RID]:
        """Candidate head RIDs with keys inside the bounds, deduplicated
        in versioned mode (one head may carry entries under several
        retained keys of the range)."""
        self.probes += 1
        if self.tree is None:
            raise CatalogError(
                f"index {self.definition.name!r} is hash-based; "
                f"range scans need a btree index")
        lo_key = encode_key(lo) if lo is not None else None
        hi_key = encode_key(hi) if hi is not None else None
        if not self.definition.unique:
            # Non-unique entries carry a RID suffix, so every entry of a
            # boundary key compares strictly *greater* than the bare
            # encoded bound.  Extend the bound past any possible suffix
            # where the bare bound would misclassify the boundary key:
            # inclusive-hi must admit its entries, and exclusive-lo must
            # skip them (without the extension ``key > lo`` re-admitted
            # every boundary entry).
            suffix = b"\xff" * (_RID.size + 1)
            if hi_key is not None and hi_inclusive:
                hi_key += suffix
            if lo_key is not None and not lo_inclusive:
                lo_key += suffix
        seen: Optional[set] = set() if self.versioned else None
        for entry_key, value in self.tree.items(
                lo=lo_key, hi=hi_key,
                lo_inclusive=lo_inclusive, hi_inclusive=hi_inclusive):
            if self.definition.unique:
                if seen is None:
                    yield decode_rid(value)
                    continue
                for rid in self._rid_list(value):
                    if rid not in seen:
                        seen.add(rid)
                        yield rid
            else:
                rid = decode_rid(entry_key[-_RID.size:])
                if seen is None:
                    yield rid
                elif rid not in seen:
                    seen.add(rid)
                    yield rid

    def __len__(self) -> int:
        index = self.tree if self.tree is not None else self.hash
        return len(index)


class Table:
    """A logical table bound to its physical storage."""

    def __init__(self, name: str, schema: Schema, heap: HeapFile,
                 versioned: bool = False) -> None:
        self.name = name
        self.schema = schema
        self.heap = heap
        self.versioned = versioned
        # Versioned payloads decode *past* their header in place (an
        # offset codec) — the batch scan never slices a copy per record.
        self._version_codec = RecordCodec(
            schema.codec.types, offset=HEADER_SIZE) if versioned else None
        #: Transaction manager supplying "latest" read views for
        #: versioned tables (wired by the catalog/database; None for
        #: standalone tables, which read with frozen visibility).
        self.txns = None
        #: Superseded/deleted version stamps awaiting vacuum
        #: (approximate gauge driving the auto-vacuum threshold).
        self.dead_versions = 0
        #: Heap mutation epoch: bumped (under the latch) by every write
        #: and every abort-undo — anything that can change what a scan
        #: yields.  The columnar mirror captures this counter at dump
        #: time and answers scans only while it still matches; vacuum
        #: surgery deliberately does *not* bump it, because pruning
        #: below the horizon never changes any live view's result.
        self.mutations = 0
        #: Columnar sibling store (attached by the catalog for
        #: versioned tables when the columnar tier is enabled).
        self.columnar = None
        self.indexes: dict[str, TableIndex] = {}
        self.row_count = 0
        #: Advisory access counters for the workload observer: plain
        #: ints bumped without locks (torn reads are fine — they feed
        #: adaptation heuristics, not invariants).
        self.seq_scans = 0
        self.index_probes = 0
        #: ``{(column, op_name): count}`` sargable predicate sightings
        #: recorded by the planner — the index advisor's raw evidence.
        self.predicate_counts: dict[tuple, int] = {}
        # Short-term latch serialising index maintenance + row counting:
        # row-level transaction locks admit concurrent writers to one
        # table, but the in-memory index structures are not thread-safe.
        self._latch = threading.RLock()

    # -- version visibility ------------------------------------------------------

    def _read_view(self, snapshot: Optional[Snapshot]) -> Snapshot:
        if snapshot is not None:
            return snapshot
        if self.txns is not None:
            return self.txns.latest_snapshot()
        return FROZEN_SNAPSHOT

    # -- SSI hooks (serializable isolation) --------------------------------------

    def _ssi(self, view: Snapshot):
        """``(manager, tracker)`` when ``view`` belongs to an active
        serializable transaction, else ``None`` — the single test every
        read-path SSI hook hangs off.  Detached latest views carry
        ``xid == 0`` and internal visitors (vacuum, unique checks) read
        through them, so they never register SIREADs."""
        if view.xid == 0 or self.txns is None:
            return None
        ssi = getattr(self.txns, "ssi", None)
        if ssi is None:
            return None
        tracker = ssi.tracker(view.xid)
        if tracker is None:
            return None
        return ssi, tracker

    def _ssi_check_write(self, txn, rid, old_row: Optional[tuple],
                         new_row: Optional[tuple]) -> None:
        """Write-time SSI check (caller holds the table latch): creating
        or stamping a version supersedes what overlapping readers may
        have observed — raise if that completes a dangerous structure."""
        ssi = getattr(self.txns, "ssi", None) if self.txns is not None \
            else None
        if ssi is not None:
            ssi.check_write(txn.txn_id, self.name, rid, self.schema,
                            old_row, new_row)

    def _visible_version(self, head_rid: RID,
                         view: Snapshot) -> Optional[bytes]:
        """Tuple bytes of the chain version ``view`` sees, or None.

        The slow path of every versioned read: taken only when a head's
        own stamps are not visible.  Runs under the table latch so a
        concurrent abort-undo or vacuum cannot delete a chain member
        between the pointer read and the record fetch; the head is
        re-read first because its bytes may have changed since the
        caller's lock-free copy.
        """
        with self._latch:
            try:
                payload = self.heap.read(head_rid)
            except PageLayoutError:
                return None
            header = unpack_version(payload)
            if not header.is_head:
                return None    # RID recycled since the caller's copy
            # Read-time rw-edges (SSI): every stamp this walk passes
            # that the view cannot see belongs to an overlapping writer
            # that superseded what we are about to read — the only
            # detection point when that writer committed before we read
            # (its write-time check predates our SIREADs).
            ssi = self._ssi(view)
            while True:
                if view.visible(header.xmin, header.xmax):
                    if ssi is not None and header.xmax != 0 \
                            and not view.sees(header.xmax):
                        ssi[0].observe_version(ssi[1], header.xmax)
                    return payload[HEADER_SIZE:]
                if ssi is not None:
                    for stamp in (header.xmin, header.xmax):
                        if stamp != 0 and not view.sees(stamp):
                            ssi[0].observe_version(ssi[1], stamp)
                prev = header.prev
                if prev is None:
                    return None
                try:
                    payload = self.heap.read(prev)
                except PageLayoutError:
                    return None   # defensive: truncated chain
                header = unpack_version(payload)

    def bootstrap_stats(self) -> tuple[int, int]:
        """(live row count, max transaction id seen) from one heap pass —
        what the catalog needs at load time, when everything on disk is
        committed (crash recovery ran first) and no manager exists yet."""
        if not self.versioned:
            return self.heap.count(), 0
        live = 0
        max_xid = 0
        for _, payload in self.heap.scan():
            flags, xmin, xmax, _, _ = VERSION_HEADER.unpack_from(payload, 0)
            if xmin > max_xid:
                max_xid = xmin
            if xmax > max_xid:
                max_xid = xmax
            if flags & FLAG_HEAD and xmax == 0:
                live += 1
        return live, max_xid

    # -- index management -----------------------------------------------------------

    def attach_index(self, index: TableIndex,
                     populate: bool = False) -> None:
        if index.definition.name in self.indexes:
            raise CatalogError(
                f"index {index.definition.name!r} already attached")
        index.versioned = self.versioned
        if populate:
            for rid, row in self.scan():
                index.insert(row, rid)
        self.indexes[index.definition.name] = index

    def detach_index(self, name: str) -> TableIndex:
        try:
            return self.indexes.pop(name)
        except KeyError:
            raise CatalogError(f"no index {name!r} on {self.name}") from None

    def index_on(self, columns: tuple[str, ...],
                 require_btree: bool = False) -> Optional[TableIndex]:
        """An index whose key is exactly ``columns`` (used by the planner)."""
        for index in self.indexes.values():
            if index.definition.columns == columns:
                if require_btree and index.tree is None:
                    continue
                return index
        return None

    # -- mutations ----------------------------------------------------------------------

    def insert(self, row: Sequence[Any], txn=None, lock_row=None) -> RID:
        """Insert one row.

        When ``txn`` is given the inverse operation is registered with it
        *immediately after* the heap placement — before row locking and
        index maintenance, either of which may raise — so an abort always
        knows how to take the row back out.  ``lock_row(rid)`` — when
        given — runs under the table latch, so the caller acquires its
        row lock before any concurrent scan can see (and lock) the new
        RID.
        """
        validated = self.schema.validate(row)
        with self._latch:
            self._check_unique(validated, txn)
            payload = self.schema.codec.encode(validated)
            if self.versioned:
                xid = txn.txn_id if txn is not None else 0
                payload = pack_version(FLAG_HEAD, xid, 0) + payload
            rid = self.heap.insert(payload, txn=txn)
            self.mutations += 1
            # The undo tracks how far the insert got: if lock_row (which
            # may hit a routine deadlock/timeout) or a crash point stops
            # us before index maintenance, the rollback must remove only
            # the heap record — index.delete of never-inserted entries
            # would itself fail and leave a phantom row behind.
            progress = {"indexed": False}
            if txn is not None:
                txn.on_abort(lambda: self._undo_insert(rid, progress, txn))
            if self.versioned and txn is not None:
                # A new row materialises inside predicates overlapping
                # readers already evaluated (the phantom case).  Checked
                # *after* heap placement: a reader registering its SIREAD
                # in between would otherwise slip past both detection
                # points (it read pre-insert state, we checked pre-
                # registration state).  A raise here aborts through the
                # undo just registered.
                self._ssi_check_write(txn, rid, None, validated)
            if lock_row is not None:
                lock_row(rid)
            maybe_crash("table.index")
            for index in self.indexes.values():
                index.insert(validated, rid)
            progress["indexed"] = True
            self.row_count += 1
        return rid

    def _check_unique(self, validated: tuple, txn,
                      exclude_rid: Optional[RID] = None,
                      old_row: Optional[tuple] = None) -> None:
        """Enforce uniqueness.  Caller holds the table latch.

        For unversioned tables a physical entry is a conflict.  For
        versioned tables the indexes retain superseded and dead entries
        until vacuum, so membership proves nothing: every candidate head
        is re-read and the key re-checked against its *latest* version.
        Only a live committed holder — or an in-flight writer whose
        outcome could leave the key taken (uncommitted insert, delete,
        or key-move away) — is a conflict; stale and committed-dead
        entries are simply skipped, and the fresh row's RID joins the
        key's entry list alongside them.
        """
        view = self._read_view(None) if self.versioned else None
        for index in self.indexes.values():
            if not index.definition.unique:
                continue
            values = index.key_values(validated)
            if old_row is not None and values == index.key_values(old_row):
                continue   # update keeping this key: no conflict possible
            if not self.versioned:
                if index.would_conflict(validated):
                    raise DuplicateKeyError(
                        f"{self.name}: duplicate key {values!r} for "
                        f"unique index {index.definition.name!r}")
                continue
            for conflict_rid in index.lookup_eq(values):
                if conflict_rid == exclude_rid:
                    continue
                if self._unique_conflict(index, conflict_rid, values,
                                         txn, view):
                    raise DuplicateKeyError(
                        f"{self.name}: duplicate key {values!r} for "
                        f"unique index {index.definition.name!r}")

    def _unique_conflict(self, index: "TableIndex", rid: RID,
                         values: tuple, txn, view: Snapshot) -> bool:
        """Does the head at ``rid`` actually contest ``values``?
        ``view`` is the caller's latest-committed read view (one per
        statement — fresh enough, since the table latch is held)."""
        try:
            payload = self.heap.read(rid)
        except PageLayoutError:
            return False   # entry raced a vacuum prune; the key is free
        header = unpack_version(payload)
        if not header.is_head:
            return False   # slot recycled into a chain copy: stale entry
        xid = txn.txn_id if txn is not None else 0
        row = self.schema.decode(payload[HEADER_SIZE:])
        if index.key_values(row) != values:
            # The latest version moved off this key.  A committed
            # key-move leaves the entry stale (readable only through old
            # snapshots): the key is free at latest.  An uncommitted
            # move may still abort — but an abort restores the latest
            # *committed* version, so only the key that version carries
            # can come back; every older retained key is free forever.
            if header.xmin in (0, xid) or view.sees(header.xmin):
                return False
            committed = self._visible_version(rid, view)
            return committed is not None and \
                index.key_values(self.schema.decode(committed)) == values
        if header.xmax != 0:
            if header.xmax == xid:
                return False   # we deleted it ourselves this transaction
            # A committed delete awaiting vacuum frees the key; an
            # uncommitted delete by another transaction may abort.
            return not view.sees(header.xmax)
        # Live holder (committed, or an in-flight insert that may yet
        # commit): the key is taken.
        return True

    def _undo_insert(self, rid: RID, progress: dict, txn) -> None:
        with self._latch:
            if progress["indexed"]:
                self._remove_row(rid, txn)
            else:
                self.heap.delete(rid, txn=txn)
                self.mutations += 1

    def _remove_row(self, rid: RID, txn) -> tuple:
        """Physically remove a row: index entries + heap record.  The
        undo path of an insert (and the whole delete for unversioned
        tables) — never used to execute a user DELETE on a versioned
        table, which only stamps ``xmax``."""
        payload = self.heap.read(rid)
        row = self.schema.decode(payload[HEADER_SIZE:] if self.versioned
                                 else payload)
        for index in self.indexes.values():
            try:
                index.delete(row, rid)
            except KeyNotFoundError:
                pass   # e.g. already unlinked by a dead-key takeover
        self.heap.delete(rid, txn=txn)
        self.row_count -= 1
        self.mutations += 1
        return row

    def read(self, rid: RID, snapshot: Optional[Snapshot] = None) -> tuple:
        """The row at ``rid`` as ``snapshot`` (default: latest) sees it.
        Raises :class:`PageLayoutError` when no version is visible —
        versioned tables mirror the tombstone semantics of plain heaps.
        """
        if not self.versioned:
            return self.schema.decode(self.heap.read(rid))
        view = self._read_view(snapshot)
        ssi = self._ssi(view)
        if ssi is not None:
            # Registered before the physical read (and before visibility
            # resolves): a write landing in between then sees the SIREAD
            # at its post-install check, and reading *absence* (no
            # visible version) is an observation writers must see.
            ssi[0].record_tuple_read(ssi[1], self.name, rid)
        payload = self.heap.read(rid)
        header = unpack_version(payload)
        if header.is_head and view.visible(header.xmin, header.xmax):
            if ssi is not None and header.xmax != 0 \
                    and not view.sees(header.xmax):
                ssi[0].observe_version(ssi[1], header.xmax)
            return self.schema.decode(payload[HEADER_SIZE:])
        tuple_bytes = self._visible_version(rid, view)
        if tuple_bytes is None:
            raise PageLayoutError(
                f"{self.name}: no version of {rid} visible to the "
                f"read view")
        return self.schema.decode(tuple_bytes)

    def delete(self, rid: RID, txn=None) -> tuple:
        with self._latch:
            if not self.versioned or txn is None:
                # Unversioned (or maintenance) path: physical removal.
                row = self._remove_row(rid, txn)
                if txn is not None:
                    txn.on_abort(lambda: self.insert(row, txn=txn))
                return row
            # MVCC delete: stamp xmax on the head, leave payload, chain
            # and index entries in place for concurrent snapshots.
            payload = self.heap.read(rid)
            row = self.schema.decode(payload[HEADER_SIZE:])
            self.heap.update(rid, restamp(payload, xmax=txn.txn_id),
                             txn=txn, op=OP_VERSION_STAMP)
            self.row_count -= 1
            self.dead_versions += 1
            self.mutations += 1
            txn.on_abort(lambda: self._undo_delete_stamp(rid, txn))
            # SSI check after the stamp is in place (see insert): a
            # raise aborts through the undo just registered.
            self._ssi_check_write(txn, rid, row, None)
        return row

    def _undo_delete_stamp(self, rid: RID, txn) -> None:
        with self._latch:
            payload = self.heap.read(rid)
            self.heap.update(rid, restamp(payload, xmax=0), txn=txn,
                             op=OP_VERSION_STAMP)
            self.row_count += 1
            self.dead_versions -= 1
            self.mutations += 1

    def update(self, rid: RID, new_row: Sequence[Any], txn=None,
               lock_row=None) -> RID:
        """Rewrite one row.

        The inverse (restore the old row at its current RID) registers
        with ``txn`` right after the heap rewrite, before locking or
        index maintenance can fail.  When the record moves (does not fit
        in place), ``lock_row(new_rid)`` runs under the table latch so
        the caller's lock follows the row to its new RID before anyone
        else can claim it.
        """
        validated = self.schema.validate(new_row)
        with self._latch:
            if self.versioned and txn is not None:
                return self._mvcc_update(rid, validated, txn, lock_row)
            old_payload = self.heap.read(rid)
            old_row = self.schema.decode(
                old_payload[HEADER_SIZE:] if self.versioned
                else old_payload)
            self._check_unique(validated, txn, exclude_rid=rid,
                               old_row=old_row)
            for index in self.indexes.values():
                index.delete(old_row, rid)
            new_payload = self.schema.codec.encode(validated)
            if self.versioned:
                # Maintenance rewrite: keep the existing header intact.
                new_payload = old_payload[:HEADER_SIZE] + new_payload
            new_rid = self.heap.update(rid, new_payload, txn=txn)
            self.mutations += 1
            progress = {"indexed": False}
            if txn is not None:
                txn.on_abort(lambda: self._undo_update(
                    new_rid, old_row, progress, txn))
            if new_rid != rid and lock_row is not None:
                lock_row(new_rid)
            maybe_crash("table.index")
            for index in self.indexes.values():
                index.insert(validated, new_rid)
            progress["indexed"] = True
        return new_rid

    def _mvcc_update(self, rid: RID, validated: tuple, txn,
                     lock_row) -> RID:
        """Version-chain update (caller holds the table latch): push the
        pre-image down the chain as an ``OLD`` copy stamped with our
        xmax, rewrite the head with ``xmin = us``, and *add* entries for
        any new keys.  Superseded-key entries are retained (still
        pointing at the head) so concurrent snapshots keep finding the
        row through them; vacuum unlinks each once no live view needs
        the versions that carried it.  An update that keeps every
        indexed key touches no index at all."""
        head_payload = self.heap.read(rid)
        header = unpack_version(head_payload)
        old_row = self.schema.decode(head_payload[HEADER_SIZE:])
        self._check_unique(validated, txn, exclude_rid=rid,
                           old_row=old_row)
        copy_payload = pack_version(header.flags & ~FLAG_HEAD,
                                    header.xmin, txn.txn_id,
                                    header.prev) + \
            head_payload[HEADER_SIZE:]
        copy_rid = self.heap.insert(copy_payload, txn=txn,
                                    op=OP_VERSION_CREATE)
        new_head = pack_version(FLAG_HEAD, txn.txn_id, 0, copy_rid) + \
            self.schema.codec.encode(validated)
        new_rid = self.heap.update(rid, new_head, txn=txn)
        progress = {"added": [],
                    "moved_from": rid if new_rid != rid else None}
        txn.on_abort(lambda: self._undo_mvcc_update(
            new_rid, copy_rid, head_payload, old_row, progress, txn))
        # Increment the gauge in the same always-runs window as the
        # undo registration, so a failure below (row-lock timeout,
        # index crash point) cannot drive it negative at abort.
        self.dead_versions += 1
        self.mutations += 1
        # SSI check after the new head is in place (see insert): a
        # reader registering its SIREAD between a pre-install check and
        # the install would be invisible to both detection points.  A
        # raise here aborts through the undo just registered.
        self._ssi_check_write(txn, rid, old_row, validated)
        if new_rid != rid and lock_row is not None:
            lock_row(new_rid)
        maybe_crash("table.index")
        if new_rid != rid:
            # Rare head relocation (the rewrite outgrew its page): every
            # retained entry must follow the head to its new RID.
            self._repoint_entries(
                self._history_rows(old_row, header.prev), rid, new_rid)
        for index in self.indexes.values():
            values = index.key_values(validated)
            if index.insert_values(values, new_rid):
                progress["added"].append((index, values))
        return new_rid

    def chain_members(self, prev: Optional[RID]
                      ) -> list[tuple[RID, bytes]]:
        """``(rid, payload)`` of every chain version from ``prev`` down,
        tolerating a truncated chain (caller holds the table latch).
        Shared by head-relocation re-pointing and the vacuum collector.
        """
        members: list[tuple[RID, bytes]] = []
        while prev is not None:
            try:
                payload = self.heap.read(prev)
            except PageLayoutError:
                break   # defensive: truncated chain
            members.append((prev, payload))
            prev = unpack_version(payload).prev
        return members

    def _history_rows(self, newest_row: tuple,
                      prev: Optional[RID]) -> list[tuple]:
        """``newest_row`` plus the rows of every chain version below
        ``prev`` (caller holds the table latch) — the key history the
        retained index entries were derived from."""
        return [newest_row] + [self.schema.decode(payload[HEADER_SIZE:])
                               for _, payload in self.chain_members(prev)]

    def _repoint_entries(self, rows: Sequence[tuple], from_rid: RID,
                         to_rid: RID) -> None:
        """Move every index entry derived from ``rows`` from one head
        RID to another, tolerating entries already pruned by vacuum."""
        for index in self.indexes.values():
            seen: set = set()
            for row in rows:
                values = index.key_values(row)
                if values in seen:
                    continue
                seen.add(values)
                try:
                    index.delete_values(values, from_rid)
                except KeyNotFoundError:
                    continue
                index.insert_values(values, to_rid)

    def _undo_mvcc_update(self, head_rid: RID, copy_rid: RID,
                          old_head_payload: bytes, old_row: tuple,
                          progress: dict, txn) -> None:
        with self._latch:
            # Only the entries this update actually added come out;
            # retained superseded-key entries were never touched.  The
            # list grows per index, so it is exact even when the insert
            # loop itself failed partway through.
            for index, values in progress["added"]:
                try:
                    index.delete_values(values, head_rid)
                except KeyNotFoundError:
                    pass
            # Restore the pre-image (original xmin/xmax/prev) at the
            # head and drop the version copy.
            back_rid = self.heap.update(head_rid, old_head_payload,
                                        txn=txn)
            moved_from = progress["moved_from"]
            if back_rid != head_rid or (moved_from is not None
                                        and moved_from != head_rid):
                # The head moved during the update, the undo, or both:
                # chase the retained entries from wherever they point
                # and re-point them at the restored head.
                rows = self._history_rows(
                    old_row, unpack_version(old_head_payload).prev)
                for source in {head_rid, moved_from} - {None, back_rid}:
                    self._repoint_entries(rows, source, back_rid)
            self.heap.delete(copy_rid, txn=txn)
            self.dead_versions -= 1
            self.mutations += 1

    def _undo_update(self, rid: RID, old_row: tuple, progress: dict,
                     txn) -> None:
        with self._latch:
            if progress["indexed"]:
                self.update(rid, old_row, txn=txn)
            else:
                # The new index entries were never inserted (the old ones
                # are already gone): restore the heap payload and re-key
                # the indexes with the old row directly.
                payload = self.schema.codec.encode(old_row)
                if self.versioned:
                    payload = self.heap.read(rid)[:HEADER_SIZE] + payload
                back_rid = self.heap.update(rid, payload, txn=txn)
                self.mutations += 1
                for index in self.indexes.values():
                    index.insert(old_row, back_rid)

    # -- write-write conflict detection (snapshot isolation) ---------------------------

    def writable_row(self, rid: RID, txn,
                     enforce_snapshot: bool = False) -> Optional[tuple]:
        """The latest row at head ``rid`` for a writer that already
        holds its X row lock — or ``None`` when the row is gone at
        latest state (skip the victim).

        First-updater-wins: with ``enforce_snapshot`` (explicit
        snapshot-isolation transactions), a head whose latest version
        was created — or whose deletion committed — after the writer's
        snapshot raises :class:`SerializationError` instead.  Autocommit
        statements pass ``enforce_snapshot=False`` and simply re-read
        latest committed state (their one statement *is* the whole
        transaction, so refreshing the read is sound, and it keeps
        single-statement counters free of spurious aborts) — except
        under serializable isolation, where the statement's SSI read
        tracking is bound to its snapshot and refreshing would mix
        read views inside one atomic statement.
        """
        if not self.versioned:
            try:
                return self.read(rid)
            except PageLayoutError:
                return None
        try:
            payload = self.heap.read(rid)
        except PageLayoutError:
            return None
        header = unpack_version(payload)
        if not header.is_head:
            return None
        xid = txn.txn_id if txn is not None else 0
        snapshot = getattr(txn, "snapshot", None)
        if header.xmax != 0:
            if header.xmax == xid:
                return None    # we deleted it ourselves this transaction
            # Holding the X lock means the stamping transaction finished;
            # an abort would have reset the stamp — so this is a
            # committed concurrent delete.
            if enforce_snapshot and snapshot is not None:
                raise SerializationError(
                    f"{self.name}: row {rid} was deleted by a "
                    f"transaction concurrent with txn {xid}'s snapshot")
            return None
        if enforce_snapshot and snapshot is not None \
                and header.xmin not in (0, xid) \
                and not snapshot.sees(header.xmin):
            raise SerializationError(
                f"{self.name}: row {rid} was updated by a transaction "
                f"concurrent with txn {xid}'s snapshot "
                f"(first-updater-wins)")
        return self.schema.decode(payload[HEADER_SIZE:])

    # -- reads -------------------------------------------------------------------------

    def record_predicate(self, column: str, op: str) -> None:
        """Count one sargable predicate sighting (planner hook).

        Lock-free read-modify-write on a plain dict: a lost update
        under racing planners just undercounts one sighting, which the
        advisor's thresholds absorb.
        """
        key = (column, op)
        self.predicate_counts[key] = \
            self.predicate_counts.get(key, 0) + 1

    def scan(self, snapshot: Optional[Snapshot] = None
             ) -> Iterator[tuple[RID, tuple]]:
        self.seq_scans += 1
        if not self.versioned:
            for rid, payload in self.heap.scan():
                yield rid, self.schema.decode(payload)
            return
        view = self._read_view(snapshot)
        ssi = self._ssi(view)
        if ssi is not None:
            # Full scan: the predicate observed is the whole relation.
            ssi[0].record_relation_read(ssi[1], self.name)
        decode = self.schema.decode
        vdecode = self._version_codec.decode
        unpack = VERSION_HEADER.unpack_from
        for rid, payload in self.heap.scan():
            flags, xmin, xmax, _, _ = unpack(payload, 0)
            if not flags & FLAG_HEAD:
                continue
            if (xmin == 0 or view.sees(xmin)) and \
                    (xmax == 0 or not view.sees(xmax)):
                if ssi is not None and xmax != 0:
                    # Visible despite a stamp the view cannot see: an
                    # overlapping writer superseded what we just read.
                    ssi[0].observe_version(ssi[1], xmax)
                yield rid, vdecode(payload)
            else:
                tuple_bytes = self._visible_version(rid, view)
                if tuple_bytes is not None:
                    yield rid, decode(tuple_bytes)

    def rows(self, snapshot: Optional[Snapshot] = None) -> Iterator[tuple]:
        for _, row in self.scan(snapshot):
            yield row

    def _select_visible(self, page_nos: Sequence[int],
                        slots: Sequence[int],
                        payloads: Sequence[bytes],
                        view: Snapshot) -> list[bytes]:
        """Apply the batch's visibility bitmap: decode every version
        header in one tight loop, keep visible heads' *full* payloads
        (the offset codec skips the header in place — zero copies), and
        chain-walk only the (rare) concurrently-modified heads."""
        out: list[bytes] = []
        append = out.append
        sees = view.sees
        ssi = self._ssi(view)
        for i, (flags, xmin, xmax, _, _) in \
                enumerate(bulk_headers(payloads)):
            if not flags & FLAG_HEAD:
                continue
            if (xmin == 0 or sees(xmin)) and (xmax == 0 or not sees(xmax)):
                if ssi is not None and xmax != 0:
                    ssi[0].observe_version(ssi[1], xmax)
                append(payloads[i])
            else:
                tuple_bytes = self._visible_version(
                    RID(page_nos[i], slots[i]), view)
                if tuple_bytes is not None:
                    append(_WALKED_HEADER + tuple_bytes)
        return out

    def scan_batches(self, batch_rows: int = BATCH_SIZE,
                     snapshot: Optional[Snapshot] = None
                     ) -> Iterator[RowBatch]:
        """Columnar full scan: one pin per page, bulk slot sweep, and
        plan-cached decode of each run (the vectorized engine's leaf).
        Versioned tables filter each run by a per-batch visibility pass
        before decoding — no per-row lock traffic on the read path."""
        self.seq_scans += 1
        if not self.versioned:
            codec = self.schema.codec
            for payloads in self.heap.scan_payload_batches(batch_rows):
                yield codec.decode_batch(payloads)
            return
        view = self._read_view(snapshot)
        ssi = self._ssi(view)
        if ssi is not None:
            ssi[0].record_relation_read(ssi[1], self.name)
        codec = self._version_codec
        for page_nos, slots, payloads in \
                self.heap.scan_version_batches(batch_rows):
            visible = self._select_visible(page_nos, slots, payloads,
                                           view)
            if visible:
                yield codec.decode_batch(visible)

    def read_many(self, rids: Iterable[RID],
                  snapshot: Optional[Snapshot] = None) -> Iterator[tuple]:
        """Decode records in RID order, pinning once per same-page run.
        Versioned tables yield only versions the read view sees (index
        entries may point at rows dead to it)."""
        if not self.versioned:
            decode = self.schema.decode
            for payload in self.heap.read_many(rids):
                yield decode(payload)
            return
        decode = self._version_codec.decode
        for _, payload in self._fetch_visible(rids, snapshot):
            yield decode(payload)

    def read_pairs(self, rids: Iterable[RID],
                   snapshot: Optional[Snapshot] = None
                   ) -> Iterator[tuple[RID, tuple]]:
        """``(head_rid, row)`` for the candidate RIDs the view sees —
        the DML victim-selection analogue of :meth:`read_many`: writers
        need the RID back so they can lock and re-read each victim."""
        if not self.versioned:
            for rid in rids:
                try:
                    payload = self.heap.read(rid)
                except PageLayoutError:
                    continue   # stale candidate (entry raced a delete)
                yield rid, self.schema.decode(payload)
            return
        decode = self._version_codec.decode
        for rid, payload in self._fetch_visible(rids, snapshot):
            yield rid, decode(payload)

    def _fetch_visible(self, rids: Iterable[RID],
                       snapshot: Optional[Snapshot]
                       ) -> Iterator[tuple[RID, bytes]]:
        """``(head_rid, payload)`` of the versions the view sees, in RID
        order (walked chain versions re-wrapped behind a neutral header
        so the offset codec decodes everything uniformly)."""
        view = self._read_view(snapshot)
        ssi = self._ssi(view)
        rid_list = rids if isinstance(rids, list) else list(rids)
        if ssi is not None:
            # All candidates registered before any physical read, so a
            # write landing mid-fetch meets the SIREADs at its
            # post-install check.
            for rid in rid_list:
                ssi[0].record_tuple_read(ssi[1], self.name, rid)
        unpack = VERSION_HEADER.unpack_from
        sees = view.sees
        for rid, payload in zip(
                rid_list, self.heap.read_many(rid_list, missing_ok=True)):
            if payload is None:
                continue      # entry raced a vacuum prune
            flags, xmin, xmax, _, _ = unpack(payload, 0)
            if not flags & FLAG_HEAD:
                continue
            if (xmin == 0 or sees(xmin)) and (xmax == 0 or not sees(xmax)):
                if ssi is not None and xmax != 0:
                    ssi[0].observe_version(ssi[1], xmax)
                yield rid, payload
            else:
                tuple_bytes = self._visible_version(rid, view)
                if tuple_bytes is not None:
                    yield rid, _WALKED_HEADER + tuple_bytes

    def read_batches(self, rids: Iterable[RID],
                     batch_rows: int = BATCH_SIZE,
                     snapshot: Optional[Snapshot] = None
                     ) -> Iterator[RowBatch]:
        """Batched index-scan fetch: RID runs are read under one pin per
        page and decoded in bulk, preserving RID order (and filtered by
        the read view on versioned tables)."""
        if not self.versioned:
            codec = self.schema.codec
            source: Iterable[bytes] = self.heap.read_many(rids)
        else:
            codec = self._version_codec
            source = (payload for _, payload
                      in self._fetch_visible(rids, snapshot))
        payloads: list[bytes] = []
        for payload in source:
            payloads.append(payload)
            if len(payloads) >= batch_rows:
                yield codec.decode_batch(payloads)
                payloads = []
        if payloads:
            yield codec.decode_batch(payloads)

    def count(self) -> int:
        return self.row_count

    def properties(self) -> dict:
        """Functional figures for the monitoring service."""
        return {
            "rows": self.row_count,
            "pages": self.heap.num_pages(),
            "indexes": sorted(self.indexes),
            "fragmentation": self.heap.fragmentation(),
            "versioned": self.versioned,
            "dead_versions": self.dead_versions,
        }
