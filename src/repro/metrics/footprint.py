"""Footprint accounting for the E2 experiment.

Two complementary measures:

- **advertised** footprint: the sum of service quality descriptions
  (what a deployment planner would budget);
- **measured** footprint: a deep ``sys.getsizeof`` walk over the live
  substrate objects (buffer frames dominate, as they should).
"""

from __future__ import annotations

import sys
from typing import Any

from repro.core.kernel import SBDMSKernel


def deep_sizeof(obj: Any, max_objects: int = 2_000_000) -> int:
    """Recursive size of ``obj`` in bytes, cycle-safe."""
    seen: set[int] = set()
    stack = [obj]
    total = 0
    while stack and len(seen) < max_objects:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        try:
            total += sys.getsizeof(current)
        except TypeError:
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
        elif hasattr(current, "__dict__"):
            stack.append(current.__dict__)
        elif hasattr(current, "__slots__"):
            for slot in current.__slots__:
                if hasattr(current, slot):
                    stack.append(getattr(current, slot))
    return total


def advertised_footprint_kb(kernel: SBDMSKernel) -> float:
    return sum(service.contract.quality.footprint_kb
               for service in kernel.registry.all())


def measured_footprint_kb(kernel: SBDMSKernel,
                          substrate: Any = None) -> float:
    total = deep_sizeof(kernel.registry.all())
    if substrate is not None:
        total += deep_sizeof(substrate)
    return total / 1024.0


def footprint_report(kernel: SBDMSKernel, substrate: Any = None) -> dict:
    return {
        "services": len(kernel.registry),
        "advertised_kb": advertised_footprint_kb(kernel),
        "measured_kb": measured_footprint_kb(kernel, substrate),
        "per_layer": {
            layer: len(kernel.registry.by_layer(layer))
            for layer in ("storage", "access", "data", "extension",
                          "kernel")},
    }
