"""Flexibility metrics (§2's observation that "there is not an exact way
or metric to measure ... the flexibility of an architecture" — so we
define operational ones and measure them).

For a running kernel the aggregator reports, per flexibility mechanism:

- **extension**: publish count and latency (Figure 5), update downtime and
  services stopped (§3.4's claim against CDBS);
- **selection**: workflow alternatives available/viable per task, fallback
  executions (§3.5);
- **adaptation**: incidents, resolution rate, strategy mix, adaptation
  latency (§3.6/Figure 7).

These are exactly the figures the F5/F6/F7 and E8 benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.kernel import SBDMSKernel


@dataclass
class FlexibilitySummary:
    extension: dict = field(default_factory=dict)
    selection: dict = field(default_factory=dict)
    adaptation: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"extension": self.extension, "selection": self.selection,
                "adaptation": self.adaptation}


def summarize(kernel: SBDMSKernel) -> FlexibilitySummary:
    summary = FlexibilitySummary()

    publishes = kernel.extension.publishes
    updates = kernel.extension.updates
    summary.extension = {
        "publishes": len(publishes),
        "mean_publish_latency_s": (
            sum(p.elapsed_s for p in publishes) / len(publishes)
            if publishes else 0.0),
        "updates": len(updates),
        "mean_update_downtime_s": (
            sum(u.downtime_s for u in updates) / len(updates)
            if updates else 0.0),
        "max_services_stopped_per_update": max(
            (u.services_stopped for u in updates), default=0),
    }

    engine = kernel.workflows
    tasks = {}
    for task in list(engine._workflows):
        alternatives = engine.alternatives(task)
        tasks[task] = {
            "alternatives": len(alternatives),
            "viable": len(engine.viable_alternatives(task)),
        }
    traces = engine.traces
    fallbacks = 0
    previous = None
    for trace in traces:
        if previous is not None and previous.task == trace.task \
                and not previous.succeeded and trace.succeeded:
            fallbacks += 1
        previous = trace
    summary.selection = {
        "tasks": tasks,
        "executions": len(traces),
        "failed_executions": sum(1 for t in traces if not t.succeeded),
        "successful_fallbacks": fallbacks,
    }

    summary.adaptation = dict(kernel.adaptation.stats())
    summary.adaptation["incidents"] = len(kernel.coordinator.incidents)
    summary.adaptation["unresolved"] = sum(
        1 for i in kernel.coordinator.incidents
        if i.kind == "failed" and not i.resolved)
    return summary
