"""Flexibility and footprint metrics (the paper's missing measurements)."""

from repro.metrics.flexibility import FlexibilitySummary, summarize
from repro.metrics.footprint import (
    advertised_footprint_kb,
    deep_sizeof,
    footprint_report,
    measured_footprint_kb,
)

__all__ = [
    "FlexibilitySummary",
    "summarize",
    "advertised_footprint_kb",
    "deep_sizeof",
    "footprint_report",
    "measured_footprint_kb",
]
