"""XML extension service: document store + path queries + shredding.

Documents live in a relational shredding (the classic edge table: one row
per element) inside the host database — exactly the paper's §1 picture of
extensions that "map between complex, application-specific data and
simpler database-level representations", except here the extension is a
first-class service rather than a bolted-on application.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.contract import (
    Interface,
    QualityDescription,
    ServiceContract,
    op,
)
from repro.core.service import Service
from repro.data.database import Database
from repro.errors import ExtensionError
from repro.extensions.xml.model import XMLNode, parse_xml
from repro.extensions.xml.paths import xpath

XML_INTERFACE = Interface("XML", (
    op("store", "name:str", "document:str", returns="int",
       semantics="parse and shred a document; returns element count"),
    op("query", "name:str", "path:str", returns="list",
       semantics="evaluate a path query against a stored document"),
    op("serialize", "name:str", returns="str"),
    op("delete", "name:str", returns="any"),
    op("list_documents", returns="list"),
    op("shred_table", "name:str", returns="str",
       semantics="name of the relational edge table for a document"),
))

_DOCS_TABLE = "__xml_documents"
_EDGES_TABLE = "__xml_edges"


class XMLService(Service):
    """Stores XML documents shredded into relational edge tables."""

    layer = "extension"

    def __init__(self, database: Database, name: str = "xml") -> None:
        super().__init__(name, ServiceContract(
            name, (XML_INTERFACE,),
            description="XML document management over relational shredding",
            quality=QualityDescription(latency_ms=1.0, footprint_kb=256.0),
            tags=frozenset({"extension", "xml"})))
        self.database = database
        self._cache: dict[str, XMLNode] = {}

    def on_setup(self, kernel=None) -> None:
        self.database.execute(
            f"CREATE TABLE IF NOT EXISTS {_DOCS_TABLE} "
            f"(name TEXT PRIMARY KEY, root_tag TEXT)")
        self.database.execute(
            f"CREATE TABLE IF NOT EXISTS {_EDGES_TABLE} "
            f"(doc TEXT NOT NULL, node_id INT NOT NULL, parent_id INT, "
            f"tag TEXT NOT NULL, text TEXT, ordinal INT, attrs TEXT, "
            f"id INT PRIMARY KEY)")

    # -- operations ------------------------------------------------------------

    def op_store(self, name: str, document: str) -> int:
        root = parse_xml(document)
        if self._find_doc(name) is not None:
            self.op_delete(name=name)
        self.database.execute(
            f"INSERT INTO {_DOCS_TABLE} VALUES (?, ?)", (name, root.tag))
        count = self._shred(name, root)
        self._cache[name] = root
        return count

    def op_query(self, name: str, path: str) -> list:
        root = self._load(name)
        results = xpath(root, path)
        return [r if isinstance(r, str) else r.to_xml() for r in results]

    def op_serialize(self, name: str) -> str:
        return self._load(name).to_xml()

    def op_delete(self, name: str) -> None:
        if self._find_doc(name) is None:
            raise ExtensionError(f"no document {name!r}")
        self.database.execute(
            f"DELETE FROM {_DOCS_TABLE} WHERE name = ?", (name,))
        self.database.execute(
            f"DELETE FROM {_EDGES_TABLE} WHERE doc = ?", (name,))
        self._cache.pop(name, None)

    def op_list_documents(self) -> list:
        return [row[0] for row in self.database.query(
            f"SELECT name FROM {_DOCS_TABLE} ORDER BY name")]

    def op_shred_table(self, name: str) -> str:
        if self._find_doc(name) is None:
            raise ExtensionError(f"no document {name!r}")
        return _EDGES_TABLE

    # -- shredding ---------------------------------------------------------------

    def _find_doc(self, name: str) -> Optional[str]:
        rows = self.database.query(
            f"SELECT root_tag FROM {_DOCS_TABLE} WHERE name = ?", (name,))
        return rows[0][0] if rows else None

    def _next_edge_id(self) -> int:
        rows = self.database.query(
            f"SELECT MAX(id) FROM {_EDGES_TABLE}")
        current = rows[0][0]
        return (current or 0) + 1

    def _shred(self, name: str, root: XMLNode) -> int:
        next_id = self._next_edge_id()
        count = 0

        def visit(node: XMLNode, parent_node_id: Optional[int],
                  ordinal: int) -> None:
            nonlocal next_id, count
            node_id = next_id
            next_id += 1
            attrs = ";".join(f"{k}={v}"
                             for k, v in sorted(node.attributes.items()))
            self.database.execute(
                f"INSERT INTO {_EDGES_TABLE} VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (name, node_id, parent_node_id, node.tag, node.text,
                 ordinal, attrs, node_id))
            count += 1
            for i, child in enumerate(node.children):
                visit(child, node_id, i)

        visit(root, None, 0)
        return count

    def _load(self, name: str) -> XMLNode:
        if name in self._cache:
            return self._cache[name]
        root_tag = self._find_doc(name)
        if root_tag is None:
            raise ExtensionError(f"no document {name!r}")
        rows = self.database.query(
            f"SELECT node_id, parent_id, tag, text, ordinal, attrs "
            f"FROM {_EDGES_TABLE} WHERE doc = ?", (name,))
        nodes: dict[int, XMLNode] = {}
        for node_id, parent_id, tag, text, ordinal, attrs in rows:
            node = XMLNode(tag, text=text or "")
            if attrs:
                for pair in attrs.split(";"):
                    key, _, value = pair.partition("=")
                    node.attributes[key] = value
            nodes[node_id] = node
        root: Optional[XMLNode] = None
        ordered = sorted(rows, key=lambda r: (r[1] or 0, r[4]))
        for node_id, parent_id, *_ in ordered:
            if parent_id is None:
                root = nodes[node_id]
            else:
                nodes[parent_id].append(nodes[node_id])
        if root is None:
            raise ExtensionError(f"document {name!r} has no root")
        self._cache[name] = root
        return root
