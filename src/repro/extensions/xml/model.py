"""Minimal XML document model and parser.

The Extension Services layer names XML first among "tailored extensions to
manage different data types".  This is a small but real XML subset:
elements, attributes, text, self-closing tags, entity escapes, and
comments.  No namespaces, processing instructions, or DTDs — documented
out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import XMLParseError

_ENTITIES = {"&lt;": "<", "&gt;": ">", "&amp;": "&", "&quot;": '"',
             "&apos;": "'"}


def _unescape(text: str) -> str:
    for entity, char in _ENTITIES.items():
        text = text.replace(entity, char)
    return text


def escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


@dataclass
class XMLNode:
    """One element: tag, attributes, text content, children."""

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    text: str = ""
    children: list["XMLNode"] = field(default_factory=list)
    parent: Optional["XMLNode"] = None

    def append(self, child: "XMLNode") -> "XMLNode":
        child.parent = self
        self.children.append(child)
        return child

    # -- traversal -------------------------------------------------------------

    def descendants(self) -> Iterator["XMLNode"]:
        for child in self.children:
            yield child
            yield from child.descendants()

    def find_all(self, tag: str) -> list["XMLNode"]:
        return [node for node in self.descendants() if node.tag == tag]

    def child_elements(self, tag: Optional[str] = None) -> list["XMLNode"]:
        return [c for c in self.children if tag is None or c.tag == tag]

    def path(self) -> str:
        parts = []
        node: Optional[XMLNode] = self
        while node is not None:
            parts.append(node.tag)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    # -- serialisation -----------------------------------------------------------

    def to_xml(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = "".join(f' {k}="{escape(v)}"'
                        for k, v in self.attributes.items())
        if not self.children and not self.text:
            return f"{pad}<{self.tag}{attrs}/>"
        if not self.children:
            return (f"{pad}<{self.tag}{attrs}>{escape(self.text)}"
                    f"</{self.tag}>")
        inner = "\n".join(c.to_xml(indent + 1) for c in self.children)
        text = escape(self.text) if self.text else ""
        return f"{pad}<{self.tag}{attrs}>{text}\n{inner}\n{pad}</{self.tag}>"


def parse_xml(text: str) -> XMLNode:
    """Parse one XML document; returns the root element."""
    parser = _Parser(text)
    root = parser.parse()
    return root


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> XMLNode:
        self._skip_prolog()
        root = self._element()
        self._skip_whitespace_and_comments()
        if self.pos < len(self.text):
            raise XMLParseError(
                f"trailing content after root element at {self.pos}")
        return root

    def _skip_prolog(self) -> None:
        self._skip_whitespace_and_comments()
        if self.text.startswith("<?xml", self.pos):
            end = self.text.find("?>", self.pos)
            if end == -1:
                raise XMLParseError("unterminated XML declaration")
            self.pos = end + 2
        self._skip_whitespace_and_comments()

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            if self.text[self.pos].isspace():
                self.pos += 1
            elif self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    raise XMLParseError("unterminated comment")
                self.pos = end + 3
            else:
                return

    def _element(self) -> XMLNode:
        if self.pos >= len(self.text) or self.text[self.pos] != "<":
            raise XMLParseError(f"expected element at {self.pos}")
        self.pos += 1
        tag = self._name()
        node = XMLNode(tag)
        self._attributes(node)
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            return node
        if self.text[self.pos:self.pos + 1] != ">":
            raise XMLParseError(f"malformed start tag {tag!r}")
        self.pos += 1
        self._content(node)
        return node

    def _name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
                self.text[self.pos].isalnum()
                or self.text[self.pos] in "_-.:"):
            self.pos += 1
        if start == self.pos:
            raise XMLParseError(f"expected name at {start}")
        return self.text[start:self.pos]

    def _attributes(self, node: XMLNode) -> None:
        while True:
            while self.pos < len(self.text) and \
                    self.text[self.pos].isspace():
                self.pos += 1
            if self.pos >= len(self.text) or \
                    self.text[self.pos] in ("/", ">"):
                return
            name = self._name()
            if self.text[self.pos:self.pos + 1] != "=":
                raise XMLParseError(f"attribute {name!r} missing '='")
            self.pos += 1
            quote = self.text[self.pos:self.pos + 1]
            if quote not in ("'", '"'):
                raise XMLParseError(f"attribute {name!r} value not quoted")
            end = self.text.find(quote, self.pos + 1)
            if end == -1:
                raise XMLParseError(f"unterminated attribute {name!r}")
            node.attributes[name] = _unescape(self.text[self.pos + 1:end])
            self.pos = end + 1

    def _content(self, node: XMLNode) -> None:
        text_parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise XMLParseError(f"unclosed element <{node.tag}>")
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos)
                if end == -1:
                    raise XMLParseError("unterminated comment")
                self.pos = end + 3
                continue
            if self.text.startswith("</", self.pos):
                self.pos += 2
                closing = self._name()
                if closing != node.tag:
                    raise XMLParseError(
                        f"mismatched closing tag </{closing}> for "
                        f"<{node.tag}>")
                if self.text[self.pos:self.pos + 1] != ">":
                    raise XMLParseError("malformed closing tag")
                self.pos += 1
                node.text = "".join(text_parts).strip()
                return
            if self.text[self.pos] == "<":
                node.append(self._element())
                continue
            next_tag = self.text.find("<", self.pos)
            if next_tag == -1:
                raise XMLParseError(f"unclosed element <{node.tag}>")
            text_parts.append(_unescape(self.text[self.pos:next_tag]))
            self.pos = next_tag
