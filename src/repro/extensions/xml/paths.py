"""XPath-like path queries over the XML model.

Supported syntax (a practical subset):

- ``/a/b/c``        — absolute child steps
- ``//tag``         — descendant-or-self at any position
- ``*``             — any element
- ``[@attr]``       — has attribute
- ``[@attr='v']``   — attribute equals
- ``[tag]``         — has a child element
- ``[n]``           — positional (1-based)
- trailing ``/text()`` or ``/@attr`` — extract strings instead of nodes
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import XPathError
from repro.extensions.xml.model import XMLNode

_STEP_RE = re.compile(
    r"^(?P<name>[\w.\-:]+|\*)(?P<predicates>(\[[^\]]*\])*)$")
_PRED_RE = re.compile(r"\[([^\]]*)\]")


@dataclass(frozen=True)
class _Step:
    name: str                       # tag or "*"
    descendant: bool                # came after //
    predicates: tuple[str, ...]


def _parse(path: str) -> tuple[list[_Step], Optional[str]]:
    if not path.startswith("/"):
        raise XPathError(f"path must start with '/': {path!r}")
    extractor: Optional[str] = None
    steps: list[_Step] = []
    position = 1
    pending_descendant = False
    while position <= len(path):
        if path.startswith("/", position - 1) and \
                path.startswith("//", position - 1):
            pass
        segment_end = path.find("/", position)
        segment = path[position:segment_end if segment_end != -1 else None]
        if segment == "":
            pending_descendant = True
            position += 1
            continue
        if segment == "text()":
            extractor = "text()"
        elif segment.startswith("@"):
            extractor = segment
        else:
            match = _STEP_RE.match(segment)
            if match is None:
                raise XPathError(f"bad path step {segment!r}")
            predicates = tuple(_PRED_RE.findall(
                match.group("predicates") or ""))
            steps.append(_Step(match.group("name"),
                               pending_descendant, predicates))
            pending_descendant = False
        if segment_end == -1:
            break
        position = segment_end + 1
    if extractor is not None and not steps:
        raise XPathError("extractor needs at least one element step")
    if not steps:
        raise XPathError(f"empty path {path!r}")
    if pending_descendant:
        raise XPathError(f"path ends with '//': {path!r}")
    return steps, extractor


def _matches(node: XMLNode, step: _Step,
             position: Optional[int] = None) -> bool:
    if step.name != "*" and node.tag != step.name:
        return False
    for predicate in step.predicates:
        predicate = predicate.strip()
        if predicate.isdigit():
            if position is None or position != int(predicate):
                return False
        elif predicate.startswith("@"):
            body = predicate[1:]
            if "=" in body:
                attr, _, raw = body.partition("=")
                expected = raw.strip().strip("'\"")
                if node.attributes.get(attr.strip()) != expected:
                    return False
            elif body.strip() not in node.attributes:
                return False
        else:
            if not node.child_elements(predicate):
                return False
    return True


def xpath(root: XMLNode, path: str) -> list[Union[XMLNode, str]]:
    """Evaluate ``path`` against ``root`` (which counts as the document
    element for the first step)."""
    steps, extractor = _parse(path)
    current: list[XMLNode] = []
    first = steps[0]
    if first.descendant:
        candidates = [root] + list(root.descendants())
    else:
        candidates = [root]
    current = [n for i, n in enumerate(candidates, start=1)
               if _matches(n, first, position=i)]
    for step in steps[1:]:
        next_nodes: list[XMLNode] = []
        for node in current:
            if step.descendant:
                pool = list(node.descendants())
                matched = [c for i, c in enumerate(pool, start=1)
                           if _matches(c, step)]
                # positional predicates are ambiguous under //; apply after
                matched = _apply_positional(matched, step)
            else:
                children = node.child_elements()
                matched = []
                position_by_tag: dict[str, int] = {}
                for child in children:
                    position_by_tag[child.tag] = \
                        position_by_tag.get(child.tag, 0) + 1
                    if _matches(child, step,
                                position=position_by_tag[child.tag]):
                        matched.append(child)
            next_nodes.extend(matched)
        current = next_nodes
    if extractor is None:
        return list(current)
    if extractor == "text()":
        return [node.text for node in current]
    attr = extractor[1:]
    return [node.attributes[attr] for node in current
            if attr in node.attributes]


def _apply_positional(nodes: list[XMLNode], step: _Step) -> list[XMLNode]:
    for predicate in step.predicates:
        if predicate.strip().isdigit():
            index = int(predicate.strip())
            return [nodes[index - 1]] if 0 < index <= len(nodes) else []
    return nodes
