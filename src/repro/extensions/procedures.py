"""Stored procedure extension service.

The integration path for "existing application functionality" (§1): users
register plain Python callables under a name; the service wraps them with
a contract and runs them with a database handle.  Procedures compose with
transactions — a failing procedure rolls its statements back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.contract import (
    Interface,
    QualityDescription,
    ServiceContract,
    op,
)
from repro.core.service import Service
from repro.data.database import Database
from repro.errors import ProcedureError

PROCEDURE_INTERFACE = Interface("Procedures", (
    op("register", "name:str", "callable:any", returns="any"),
    op("call", "name:str", "args:any", returns="any"),
    op("drop", "name:str", returns="any"),
    op("list_procedures", returns="list"),
))


@dataclass
class _Procedure:
    fn: Callable
    transactional: bool
    calls: int = 0


class ProcedureService(Service):
    """Registered Python callables exposed as database procedures.

    Procedures receive ``(db, *args)``; with ``transactional=True`` (the
    default) they run inside a transaction that is rolled back if they
    raise.
    """

    layer = "extension"

    def __init__(self, database: Database,
                 name: str = "procedures") -> None:
        super().__init__(name, ServiceContract(
            name, (PROCEDURE_INTERFACE,),
            description="server-side procedures over the SQL engine",
            quality=QualityDescription(latency_ms=0.2, footprint_kb=64.0),
            tags=frozenset({"extension", "procedures"})))
        self.database = database
        self._procedures: dict[str, _Procedure] = {}

    def register(self, name: str, fn: Callable,
                 transactional: bool = True) -> None:
        """Python-level registration (keyword-rich, so not forced through
        the narrow op_ signature)."""
        if name in self._procedures:
            raise ProcedureError(f"procedure {name!r} already registered")
        if not callable(fn):
            raise ProcedureError(f"procedure {name!r} is not callable")
        self._procedures[name] = _Procedure(fn, transactional)

    # -- operations -----------------------------------------------------------------

    def op_register(self, name: str, callable: Any) -> None:  # noqa: A002
        self.register(name, callable)

    def op_call(self, name: str, args: Any = ()) -> Any:
        procedure = self._procedures.get(name)
        if procedure is None:
            raise ProcedureError(f"no procedure {name!r}")
        procedure.calls += 1
        arguments = tuple(args or ())
        if not procedure.transactional or self.database.in_transaction:
            return procedure.fn(self.database, *arguments)
        self.database.execute("BEGIN")
        try:
            result = procedure.fn(self.database, *arguments)
        except Exception:
            self.database.execute("ROLLBACK")
            raise
        self.database.execute("COMMIT")
        return result

    def op_drop(self, name: str) -> None:
        if name not in self._procedures:
            raise ProcedureError(f"no procedure {name!r}")
        del self._procedures[name]

    def op_list_procedures(self) -> list:
        return sorted(self._procedures)

    def stats(self) -> dict:
        return {name: p.calls for name, p in self._procedures.items()}
