"""Replication extension service: primary/replica statement shipping.

Logical (statement-based) replication: every mutating statement executed
through the service is appended to a replication log and shipped to
replicas either synchronously or on demand (``sync_replicas``).  Replicas
are full :class:`~repro.data.database.Database` instances, so a promoted
replica is immediately a working primary — the storage-service failover
story of §4 one layer up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.contract import (
    Interface,
    QualityDescription,
    ServiceContract,
    op,
)
from repro.core.service import Service
from repro.data.database import Database
from repro.errors import ReplicationError

REPLICATION_INTERFACE = Interface("Replication", (
    op("execute", "statement:str", "params:any", returns="any",
       semantics="run on the primary and replicate"),
    op("add_replica", "name:str", returns="any"),
    op("remove_replica", "name:str", returns="any"),
    op("sync_replicas", returns="dict",
       semantics="ship pending statements to lagging replicas"),
    op("replica_lag", returns="dict"),
    op("promote", "name:str", returns="any",
       semantics="make a replica the new primary"),
    op("status", returns="dict"),
))


@dataclass
class _Replica:
    database: Database
    applied: int = 0          # replication-log position
    synchronous: bool = True


class ReplicationService(Service):
    """Statement-shipping replication around a primary database."""

    layer = "extension"

    def __init__(self, primary: Database,
                 name: str = "replication") -> None:
        super().__init__(name, ServiceContract(
            name, (REPLICATION_INTERFACE,),
            description="primary/replica statement-based replication",
            quality=QualityDescription(latency_ms=0.5, footprint_kb=128.0),
            tags=frozenset({"extension", "replication"})))
        self.primary = primary
        self.log: list[tuple[str, tuple]] = []
        self.replicas: dict[str, _Replica] = {}

    # -- replica management -------------------------------------------------------

    def add_replica(self, name: str, database: Optional[Database] = None,
                    synchronous: bool = True) -> Database:
        if name in self.replicas:
            raise ReplicationError(f"replica {name!r} already attached")
        replica_db = database or Database()
        replica = _Replica(replica_db, applied=0, synchronous=synchronous)
        # Catch up on history so far.
        self._apply_log(replica)
        self.replicas[name] = replica
        return replica_db

    def op_add_replica(self, name: str) -> None:
        self.add_replica(name)

    def op_remove_replica(self, name: str) -> None:
        if name not in self.replicas:
            raise ReplicationError(f"no replica {name!r}")
        del self.replicas[name]

    # -- execution -------------------------------------------------------------------

    _MUTATING = ("INSERT", "UPDATE", "DELETE", "CREATE", "DROP")

    def op_execute(self, statement: str, params: Any = ()) -> Any:
        params = tuple(params or ())
        result = self.primary.execute(statement, params)
        if statement.lstrip().split(None, 1)[0].upper() in self._MUTATING:
            self.log.append((statement, params))
            for replica in self.replicas.values():
                if replica.synchronous:
                    self._apply_log(replica)
        if hasattr(result, "rows"):
            return {"columns": result.columns, "rows": result.rows}
        return {"operation": result.operation, "affected": result.affected}

    def _apply_log(self, replica: _Replica) -> int:
        applied = 0
        while replica.applied < len(self.log):
            statement, params = self.log[replica.applied]
            replica.database.execute(statement, params)
            replica.applied += 1
            applied += 1
        return applied

    def op_sync_replicas(self) -> dict:
        return {name: self._apply_log(replica)
                for name, replica in self.replicas.items()}

    # -- failover ----------------------------------------------------------------------

    def op_replica_lag(self) -> dict:
        return {name: len(self.log) - replica.applied
                for name, replica in self.replicas.items()}

    def op_promote(self, name: str) -> None:
        """Replica becomes primary; the old primary is discarded (§3.7:
        alternate services complete the original tasks)."""
        replica = self.replicas.get(name)
        if replica is None:
            raise ReplicationError(f"no replica {name!r}")
        self._apply_log(replica)  # catch up first
        self.primary = replica.database
        del self.replicas[name]
        # Remaining replicas keep their log positions: the log is shared.

    def op_status(self) -> dict:
        return {
            "log_length": len(self.log),
            "replicas": {
                name: {"applied": r.applied, "synchronous": r.synchronous,
                       "lag": len(self.log) - r.applied}
                for name, r in self.replicas.items()},
        }

    def divergence_check(self, table: str) -> dict:
        """Compare a table's contents across primary and replicas (test
        helper; honest replication needs verification)."""
        reference = sorted(self.primary.catalog.table(table).rows())
        report = {}
        for name, replica in self.replicas.items():
            try:
                rows = sorted(replica.database.catalog.table(table).rows())
                report[name] = "consistent" if rows == reference \
                    else "diverged"
            except Exception:  # noqa: BLE001
                report[name] = "missing"
        return report
