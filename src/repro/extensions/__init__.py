"""Extension services layer: XML, streaming, procedures, replication.

"Extension Services allow users to design tailored extensions to manage
different data types, such as XML files or streaming data, or integrate
their own application specific services" (§3.1; the Figure 2 legend also
names procedures, queries, and replication).
"""

from repro.extensions.procedures import ProcedureService
from repro.extensions.replication import ReplicationService
from repro.extensions.streaming import StreamService
from repro.extensions.xml.model import XMLNode, escape, parse_xml
from repro.extensions.xml.paths import xpath
from repro.extensions.xml.service import XMLService

__all__ = [
    "ProcedureService",
    "ReplicationService",
    "StreamService",
    "XMLNode",
    "escape",
    "parse_xml",
    "xpath",
    "XMLService",
]
