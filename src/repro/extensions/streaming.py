"""Streaming data extension service.

"Extension Services allow users to design tailored extensions to manage
different data types, such as XML files or streaming data."  This service
manages named streams with tumbling and sliding windows, continuous
aggregates, and stream-to-table joins against the host database.

Time is logical (event sequence numbers) unless events carry an explicit
``ts`` field — deterministic for tests and benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.contract import (
    Interface,
    QualityDescription,
    ServiceContract,
    op,
)
from repro.core.service import Service
from repro.errors import StreamError

STREAM_INTERFACE = Interface("Stream", (
    op("define_stream", "name:str", "columns:any", returns="any"),
    op("push", "stream:str", "event:any", returns="int",
       semantics="append one event; returns its sequence number"),
    op("window", "stream:str", "size:int", "kind:str", returns="list",
       semantics="current tumbling/sliding window contents"),
    op("aggregate", "stream:str", "size:int", "function:str",
       "column:str", returns="any",
       semantics="aggregate over the latest window"),
    op("register_continuous", "name:str", "stream:str", "size:int",
       "function:str", "column:str", returns="any"),
    op("continuous_results", "name:str", returns="list"),
    op("stats", returns="dict"),
))


@dataclass
class _Stream:
    columns: list[str]
    events: deque = field(default_factory=deque)
    sequence: int = 0
    max_retained: int = 10_000


@dataclass
class _ContinuousQuery:
    stream: str
    size: int
    function: str
    column: str
    results: list = field(default_factory=list)
    _pending: list = field(default_factory=list)


_AGGREGATES: dict[str, Callable[[list], Any]] = {
    "count": len,
    "sum": sum,
    "avg": lambda xs: sum(xs) / len(xs) if xs else None,
    "min": lambda xs: min(xs) if xs else None,
    "max": lambda xs: max(xs) if xs else None,
}


class StreamService(Service):
    """Window-based stream processing."""

    layer = "extension"

    def __init__(self, name: str = "streaming") -> None:
        super().__init__(name, ServiceContract(
            name, (STREAM_INTERFACE,),
            description="windows and continuous aggregates over streams",
            quality=QualityDescription(latency_ms=0.05, footprint_kb=128.0),
            tags=frozenset({"extension", "streaming"})))
        self._streams: dict[str, _Stream] = {}
        self._continuous: dict[str, _ContinuousQuery] = {}

    # -- stream management -------------------------------------------------------

    def op_define_stream(self, name: str, columns: Any) -> None:
        if name in self._streams:
            raise StreamError(f"stream {name!r} already defined")
        self._streams[name] = _Stream(list(columns))

    def _stream(self, name: str) -> _Stream:
        try:
            return self._streams[name]
        except KeyError:
            raise StreamError(f"no stream {name!r}") from None

    def op_push(self, stream: str, event: Any) -> int:
        target = self._stream(stream)
        row = tuple(event)
        if len(row) != len(target.columns):
            raise StreamError(
                f"event arity {len(row)} != stream arity "
                f"{len(target.columns)}")
        target.sequence += 1
        target.events.append((target.sequence, row))
        if len(target.events) > target.max_retained:
            target.events.popleft()
        self._feed_continuous(stream, row)
        return target.sequence

    # -- windows --------------------------------------------------------------------

    def op_window(self, stream: str, size: int,
                  kind: str = "sliding") -> list:
        target = self._stream(stream)
        if size <= 0:
            raise StreamError("window size must be positive")
        events = list(target.events)
        if kind == "sliding":
            return [row for _, row in events[-size:]]
        if kind == "tumbling":
            # The last *complete* tumbling window.
            complete = (len(events) // size) * size
            if complete == 0:
                return []
            return [row for _, row in events[complete - size:complete]]
        raise StreamError(f"unknown window kind {kind!r}")

    def op_aggregate(self, stream: str, size: int, function: str,
                     column: str) -> Any:
        target = self._stream(stream)
        if function not in _AGGREGATES:
            raise StreamError(f"unknown aggregate {function!r}")
        try:
            position = target.columns.index(column)
        except ValueError:
            raise StreamError(
                f"stream {stream!r} has no column {column!r}") from None
        window = self.op_window(stream, size, "sliding")
        values = [row[position] for row in window
                  if row[position] is not None]
        return _AGGREGATES[function](values)

    # -- continuous queries -------------------------------------------------------------

    def op_register_continuous(self, name: str, stream: str, size: int,
                               function: str, column: str) -> None:
        if name in self._continuous:
            raise StreamError(f"continuous query {name!r} already exists")
        target = self._stream(stream)
        if function not in _AGGREGATES:
            raise StreamError(f"unknown aggregate {function!r}")
        if column not in target.columns:
            raise StreamError(
                f"stream {stream!r} has no column {column!r}")
        self._continuous[name] = _ContinuousQuery(stream, size, function,
                                                  column)

    def op_continuous_results(self, name: str) -> list:
        try:
            return list(self._continuous[name].results)
        except KeyError:
            raise StreamError(f"no continuous query {name!r}") from None

    def _feed_continuous(self, stream: str, row: tuple) -> None:
        target = self._streams[stream]
        for query in self._continuous.values():
            if query.stream != stream:
                continue
            position = target.columns.index(query.column)
            query._pending.append(row[position])
            if len(query._pending) >= query.size:
                values = [v for v in query._pending if v is not None]
                query.results.append(_AGGREGATES[query.function](values))
                query._pending.clear()

    # -- joins & monitoring ------------------------------------------------------------

    def stream_table_join(self, stream: str, size: int, key_column: str,
                          table_rows: list[tuple],
                          table_key: int) -> list[tuple]:
        """Join the latest window against a materialised table (used by the
        streaming example; plain method because tables aren't
        JSON-marshallable through every binding)."""
        target = self._stream(stream)
        position = target.columns.index(key_column)
        lookup: dict[Any, list[tuple]] = {}
        for row in table_rows:
            lookup.setdefault(row[table_key], []).append(row)
        out: list[tuple] = []
        for event in self.op_window(stream, size, "sliding"):
            for match in lookup.get(event[position], []):
                out.append(event + match)
        return out

    def op_stats(self) -> dict:
        return {
            "streams": {name: {"events": len(s.events),
                               "sequence": s.sequence}
                        for name, s in self._streams.items()},
            "continuous_queries": sorted(self._continuous),
        }
