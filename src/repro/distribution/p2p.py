"""P2P registry dissemination (§4).

"For highly distributed and dynamic settings, P2P style service
information updates can be used to transmit information between service
repositories."  Each peer holds a registry-snapshot replica with versioned
entries; a gossip round has every peer push its newest entries to ``fanout``
random (seeded) neighbours over the simulated network.  Convergence time
vs. cluster size is experiment E5.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.distribution.network import SimNetwork
from repro.errors import NetworkError


@dataclass
class RegistryEntry:
    """One service's advertisement, versioned for last-writer-wins."""

    service: str
    version: int
    data: dict = field(default_factory=dict)
    origin: str = ""


class GossipPeer:
    """One repository replica participating in gossip."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.entries: dict[str, RegistryEntry] = {}

    def publish(self, service: str, data: dict) -> None:
        current = self.entries.get(service)
        version = (current.version + 1) if current else 1
        self.entries[service] = RegistryEntry(service, version, data,
                                              origin=self.name)

    def merge(self, incoming: list[RegistryEntry]) -> int:
        """Last-writer-wins merge; returns how many entries changed."""
        changed = 0
        for entry in incoming:
            current = self.entries.get(entry.service)
            if current is None or entry.version > current.version:
                self.entries[entry.service] = entry
                changed += 1
        return changed

    def digest(self) -> dict[str, int]:
        return {s: e.version for s, e in self.entries.items()}


class GossipCluster:
    """A set of peers gossiping over a simulated network."""

    def __init__(self, peer_names: list[str],
                 network: Optional[SimNetwork] = None,
                 fanout: int = 2, seed: int = 7) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.peers = {name: GossipPeer(name) for name in peer_names}
        self.network = network or SimNetwork()
        self.fanout = fanout
        self._rng = random.Random(seed)
        self.rounds_run = 0

    def peer(self, name: str) -> GossipPeer:
        return self.peers[name]

    def run_round(self) -> int:
        """One synchronous gossip round; returns entries changed anywhere."""
        total_changed = 0
        # Snapshot targets first so a round is order-independent enough.
        plans: list[tuple[str, str, list[RegistryEntry]]] = []
        names = sorted(self.peers)
        for name in names:
            peer = self.peers[name]
            others = [n for n in names if n != name]
            if not others:
                continue
            targets = self._rng.sample(
                others, k=min(self.fanout, len(others)))
            payload = list(peer.entries.values())
            for target in targets:
                plans.append((name, target, payload))
        for source, target, payload in plans:
            size = sum(len(json.dumps(e.data)) + len(e.service) + 8
                       for e in payload)
            try:
                self.network.send(source, target, size)
            except NetworkError:
                continue
            total_changed += self.peers[target].merge(payload)
        self.rounds_run += 1
        return total_changed

    def converged(self) -> bool:
        digests = [peer.digest() for peer in self.peers.values()]
        return all(d == digests[0] for d in digests[1:])

    def rounds_to_convergence(self, max_rounds: int = 100) -> int:
        """Run rounds until every replica agrees; returns rounds used."""
        for round_number in range(1, max_rounds + 1):
            self.run_round()
            if self.converged():
                return round_number
        return max_rounds

    def coverage(self, service: str) -> float:
        """Fraction of peers knowing ``service``."""
        knowing = sum(1 for p in self.peers.values()
                      if service in p.entries)
        return knowing / len(self.peers) if self.peers else 0.0
