"""Latency-aware service composition (§4).

"Storage services can be dynamically composed in a distributed
environment, according to the current location of the client to reduce
latency times."  Given services placed on devices and a network latency
matrix, the placer selects, per client, the provider minimising observed
latency — and re-selects as conditions change.  Experiment E4 compares
this against static (first-registered) placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.service import Service
from repro.distribution.network import SimNetwork
from repro.distribution.node import Device
from repro.errors import ServiceNotFoundError


@dataclass
class PlacementDecision:
    client: str
    service: str
    device: str
    expected_latency_s: float


class LatencyAwarePlacer:
    """Chooses the closest available provider of an interface."""

    def __init__(self, network: SimNetwork,
                 devices: Sequence[Device]) -> None:
        self.network = network
        self.devices = {d.name: d for d in devices}
        self.decisions: list[PlacementDecision] = []

    def providers_of(self, interface: str) -> list[tuple[Device, Service]]:
        out = []
        for device in self.devices.values():
            if not device.online:
                continue
            for service in device.services.values():
                if service.available and \
                        service.contract.provides(interface):
                    out.append((device, service))
        return out

    def choose(self, client: str, interface: str,
               exclude_pressured: bool = True) -> PlacementDecision:
        candidates = self.providers_of(interface)
        if exclude_pressured:
            healthy = [(d, s) for d, s in candidates
                       if not d.under_pressure]
            if healthy:
                candidates = healthy
        if not candidates:
            raise ServiceNotFoundError(
                f"no provider of {interface!r} reachable from {client}")
        reachable = [(d, s) for d, s in candidates
                     if self.network.reachable(client, d.name)]
        if not reachable:
            raise ServiceNotFoundError(
                f"all providers of {interface!r} partitioned from {client}")
        device, service = min(
            reachable, key=lambda pair: self.network.latency(
                client, pair[0].name))
        decision = PlacementDecision(
            client, service.name, device.name,
            self.network.latency(client, device.name))
        self.decisions.append(decision)
        return decision

    def call(self, client: str, interface: str, operation: str,
             **args) -> tuple[object, float]:
        """Choose, charge the network, invoke; returns (result, latency)."""
        decision = self.choose(client, interface)
        device = self.devices[decision.device]
        latency = self.network.send(client, decision.device)
        result = device.services[decision.service].invoke(operation, **args)
        latency += self.network.send(decision.device, client)
        device.serve()
        return result, latency


class StaticPlacer:
    """Baseline: always the first registered provider, wherever it is."""

    def __init__(self, network: SimNetwork,
                 devices: Sequence[Device]) -> None:
        self.network = network
        self.devices = {d.name: d for d in devices}

    def call(self, client: str, interface: str, operation: str,
             **args) -> tuple[object, float]:
        for device in self.devices.values():
            if not device.online:
                continue
            for service in device.services.values():
                if service.available and \
                        service.contract.provides(interface):
                    latency = self.network.send(client, device.name)
                    result = service.invoke(operation, **args)
                    latency += self.network.send(device.name, client)
                    device.serve()
                    return result, latency
        raise ServiceNotFoundError(f"no provider of {interface!r}")
