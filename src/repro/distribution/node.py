"""Simulated devices hosting services (§4: mobile and embedded devices).

A :class:`Device` models the resource side of the Discussion section:
CPU load, memory, and a battery that drains with work.  Devices "contain
services that enable the architecture to monitor service activity and
functional parameters"; here each device carries its own resource manager
and raises ``device.low_resource`` events — the trigger for workload
redirection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.events import EventBus
from repro.core.resource import ResourceManager, ResourcePool
from repro.core.service import Service
from repro.errors import NodeError


@dataclass
class BatteryModel:
    """Linear battery: each unit of work drains ``drain_per_op``."""

    capacity: float = 100.0
    level: float = 100.0
    drain_per_op: float = 0.01

    def drain(self, operations: int = 1) -> None:
        self.level = max(0.0, self.level - operations * self.drain_per_op)

    @property
    def fraction(self) -> float:
        return self.level / self.capacity if self.capacity else 0.0


class Device:
    """A node: resources + battery + hosted services."""

    def __init__(self, name: str, cpu: float = 100.0,
                 memory_kb: float = 65_536.0,
                 battery: Optional[BatteryModel] = None,
                 events: Optional[EventBus] = None,
                 low_battery_threshold: float = 0.2,
                 high_load_threshold: float = 0.9) -> None:
        self.name = name
        self.events = events or EventBus()
        self.resources = ResourceManager(
            ResourcePool({"cpu": cpu, "memory_kb": memory_kb}),
            self.events)
        self.battery = battery or BatteryModel()
        self.low_battery_threshold = low_battery_threshold
        self.high_load_threshold = high_load_threshold
        self.services: dict[str, Service] = {}
        self.operations_served = 0
        self._alerted = False
        self.online = True

    # -- hosting -----------------------------------------------------------------

    def host(self, service: Service) -> None:
        if service.name in self.services:
            raise NodeError(f"{self.name} already hosts {service.name!r}")
        self.services[service.name] = service
        service.set_property("device", self.name)

    def evict(self, service_name: str) -> Service:
        try:
            service = self.services.pop(service_name)
        except KeyError:
            raise NodeError(
                f"{self.name} does not host {service_name!r}") from None
        service.set_property("device", None)
        return service

    # -- work --------------------------------------------------------------------------

    def serve(self, operations: int = 1, cpu_per_op: float = 0.1) -> None:
        """Account for ``operations`` units of served work."""
        if not self.online:
            raise NodeError(f"{self.name} is offline")
        self.operations_served += operations
        self.battery.drain(operations)
        # Transient CPU usage: spike then release.
        load = min(operations * cpu_per_op,
                   self.resources.pool.capacity["cpu"])
        self.resources.pool.used["cpu"] = load
        self._check_alerts()

    def _check_alerts(self) -> None:
        pressured = self.under_pressure
        if pressured and not self._alerted:
            self._alerted = True
            self.events.publish(
                "device.low_resource",
                {"device": self.name,
                 "battery": self.battery.fraction,
                 "cpu_load": self.resources.pool.utilisation("cpu")},
                source=self.name)
        elif not pressured:
            self._alerted = False

    @property
    def under_pressure(self) -> bool:
        """Low battery OR high computation load (§4's two alert causes)."""
        return (self.battery.fraction <= self.low_battery_threshold
                or self.resources.pool.utilisation("cpu")
                >= self.high_load_threshold)

    def go_offline(self) -> None:
        self.online = False
        for service in self.services.values():
            service.fail()

    def status(self) -> dict:
        return {
            "device": self.name,
            "online": self.online,
            "battery": round(self.battery.fraction, 4),
            "cpu_load": self.resources.pool.utilisation("cpu"),
            "services": sorted(self.services),
            "operations_served": self.operations_served,
            "under_pressure": self.under_pressure,
        }
