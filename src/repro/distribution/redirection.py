"""Workload redirection off low-resource devices (§4).

"In case of a low resource alert, which can be caused by low battery
capacity or high computation load, our SBDMS architecture can direct the
workload to other devices to maintain the system operational."

The redirector subscribes to ``device.low_resource`` events, keeps a live
set of pressured devices, and routes each request to the best healthy
host.  Experiment E3 measures continuity (no failed requests) and how
much load moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.events import EventBus
from repro.distribution.network import SimNetwork
from repro.distribution.node import Device
from repro.errors import ServiceNotFoundError


@dataclass
class RedirectionStats:
    requests: int = 0
    redirected: int = 0
    failed: int = 0
    per_device: dict[str, int] = field(default_factory=dict)

    @property
    def continuity(self) -> float:
        if self.requests == 0:
            return 1.0
        return (self.requests - self.failed) / self.requests


class WorkloadRedirector:
    """Routes operations away from pressured devices."""

    def __init__(self, devices: Sequence[Device],
                 network: Optional[SimNetwork] = None,
                 events: Optional[EventBus] = None) -> None:
        self.devices = {d.name: d for d in devices}
        self.network = network or SimNetwork()
        self.pressured: set[str] = set()
        self.stats = RedirectionStats()
        self.events = events
        for device in devices:
            device.events.subscribe("device.low_resource", self._on_alert)

    def _on_alert(self, event) -> None:
        self.pressured.add(event.payload["device"])
        if self.events is not None:
            self.events.publish("redirector.device_pressured",
                                dict(event.payload), source="redirector")

    def refresh_pressure(self) -> None:
        """Re-evaluate (devices recover when charged / load drops)."""
        self.pressured = {name for name, device in self.devices.items()
                          if device.under_pressure or not device.online}

    def preferred_host(self, interface: str,
                       client: Optional[str] = None) -> Device:
        candidates = []
        for device in self.devices.values():
            if not device.online:
                continue
            if not any(s.available and s.contract.provides(interface)
                       for s in device.services.values()):
                continue
            candidates.append(device)
        if not candidates:
            raise ServiceNotFoundError(f"no host provides {interface!r}")
        healthy = [d for d in candidates if d.name not in self.pressured]
        pool = healthy or candidates  # degraded beats dead
        if client is not None:
            return min(pool, key=lambda d: self.network.latency(
                client, d.name))
        # Least-loaded healthy device.
        return min(pool, key=lambda d: d.operations_served)

    def route(self, interface: str, operation: str,
              client: Optional[str] = None,
              primary: Optional[str] = None, **args):
        """Execute one operation on the best host; counts redirections
        away from ``primary`` (the device that would naively serve it)."""
        self.refresh_pressure()
        self.stats.requests += 1
        try:
            host = self.preferred_host(interface, client)
        except ServiceNotFoundError:
            self.stats.failed += 1
            raise
        if primary is not None and host.name != primary:
            self.stats.redirected += 1
        self.stats.per_device[host.name] = \
            self.stats.per_device.get(host.name, 0) + 1
        service = next(s for s in host.services.values()
                       if s.available and s.contract.provides(interface))
        if client is not None:
            self.network.send(client, host.name)
        try:
            result = service.invoke(operation, **args)
        except Exception:
            self.stats.failed += 1
            raise
        host.serve()
        return result
