"""Simulated distribution substrate: devices, network, gossip, placement.

The Discussion section's distributed scenarios (§4) run on this package:
latency-aware composition, P2P registry updates, and workload redirection
off low-resource devices — all deterministic simulations (see the
substitution table in DESIGN.md).
"""

from repro.distribution.network import NetworkStats, SimNetwork
from repro.distribution.node import BatteryModel, Device
from repro.distribution.p2p import GossipCluster, GossipPeer, RegistryEntry
from repro.distribution.placement import (
    LatencyAwarePlacer,
    PlacementDecision,
    StaticPlacer,
)
from repro.distribution.redirection import (
    RedirectionStats,
    WorkloadRedirector,
)

__all__ = [
    "NetworkStats",
    "SimNetwork",
    "BatteryModel",
    "Device",
    "GossipCluster",
    "GossipPeer",
    "RegistryEntry",
    "LatencyAwarePlacer",
    "PlacementDecision",
    "StaticPlacer",
    "RedirectionStats",
    "WorkloadRedirector",
]
