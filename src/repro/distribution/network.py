"""Simulated network for the distribution experiments (§4).

A latency matrix between named nodes, with optional partitions and seeded
message loss.  Deterministic: "sending" charges simulated time and counts
messages; nothing actually crosses a socket (the substitution table in
DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NetworkError


@dataclass
class NetworkStats:
    messages: int = 0
    bytes_sent: int = 0
    dropped: int = 0
    time_charged: float = 0.0


class SimNetwork:
    """Pairwise latencies + partitions + loss."""

    def __init__(self, default_latency_s: float = 0.010,
                 loss_rate: float = 0.0, seed: int = 7) -> None:
        self.default_latency_s = default_latency_s
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self._latency: dict[tuple[str, str], float] = {}
        self._partitioned: set[frozenset[str]] = set()
        self.stats = NetworkStats()

    # -- topology ---------------------------------------------------------------

    def set_latency(self, a: str, b: str, latency_s: float) -> None:
        self._latency[(a, b)] = latency_s
        self._latency[(b, a)] = latency_s

    def latency(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        return self._latency.get((a, b), self.default_latency_s)

    def partition(self, a: str, b: str) -> None:
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitioned.clear()

    def reachable(self, a: str, b: str) -> bool:
        return frozenset((a, b)) not in self._partitioned

    # -- transfer ------------------------------------------------------------------

    def send(self, source: str, target: str, payload_bytes: int = 0) -> float:
        """Charge one message; returns the latency it cost.

        Raises :class:`NetworkError` on partition or (seeded) loss.
        """
        if not self.reachable(source, target):
            self.stats.dropped += 1
            raise NetworkError(f"partition between {source} and {target}")
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.stats.dropped += 1
            raise NetworkError(f"message {source}->{target} lost")
        cost = self.latency(source, target) + payload_bytes * 1e-9
        self.stats.messages += 1
        self.stats.bytes_sent += payload_bytes
        self.stats.time_charged += cost
        return cost
