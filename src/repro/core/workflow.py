"""Workflows and task plans (§3.3, §3.5).

A :class:`Workflow` is a named sequence of steps, each naming an interface
and an operation; services are resolved *late* — at execution time,
through the registry — which is the paper's "services are designed for
late binding" enabling run-time recomposition.

The :class:`WorkflowEngine` keeps *alternative* workflows per task ("by
being able to support multiple workflows for the same task, our SBDMS
architecture can choose and use them according to specific requirements",
§3.5) and executes whichever the installed selection policy ranks best;
on failure it falls through to the next alternative, recording what the
coordinator needs for adaptation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.bindings import Binding, LocalBinding
from repro.core.registry import ServiceRegistry
from repro.errors import CompositionError, ServiceNotFoundError


@dataclass
class Step:
    """One workflow step.

    ``interface``/``operation`` locate the callee; ``bind_args`` computes
    the call's arguments from the workflow context (a dict accumulated
    across steps); ``save_as`` stores the result back into the context.
    """

    interface: str
    operation: str
    bind_args: Callable[[dict], dict] = field(default=lambda ctx: {})
    save_as: Optional[str] = None
    description: str = ""


@dataclass
class Workflow:
    """A named, ordered composition of steps."""

    name: str
    task: str                      # the logical task this workflow performs
    steps: list[Step]
    priority: int = 0              # higher wins among alternatives
    tags: frozenset[str] = frozenset()

    def required_interfaces(self) -> list[str]:
        seen: list[str] = []
        for step in self.steps:
            if step.interface not in seen:
                seen.append(step.interface)
        return seen


@dataclass
class ExecutionTrace:
    """What happened during one workflow execution."""

    workflow: str
    task: str
    succeeded: bool
    steps_run: int = 0
    result: Any = None
    error: Optional[str] = None
    services_used: list[str] = field(default_factory=list)


class WorkflowEngine:
    """Executes workflows with late binding and alternative fallback."""

    def __init__(self, registry: ServiceRegistry,
                 binding: Optional[Binding] = None,
                 selector: Optional["SelectionPolicy"] = None) -> None:
        self.registry = registry
        self.binding = binding or LocalBinding()
        self.selector = selector
        self._workflows: dict[str, list[Workflow]] = {}
        self.traces: list[ExecutionTrace] = []

    # -- registration ----------------------------------------------------------

    def register(self, workflow: Workflow) -> None:
        alternatives = self._workflows.setdefault(workflow.task, [])
        if any(w.name == workflow.name for w in alternatives):
            raise CompositionError(
                f"workflow {workflow.name!r} already registered for task "
                f"{workflow.task!r}")
        alternatives.append(workflow)
        alternatives.sort(key=lambda w: -w.priority)

    def deregister(self, task: str, name: str) -> None:
        alternatives = self._workflows.get(task, [])
        self._workflows[task] = [w for w in alternatives if w.name != name]

    def alternatives(self, task: str) -> list[Workflow]:
        return list(self._workflows.get(task, []))

    # -- execution ---------------------------------------------------------------

    def _resolve(self, interface: str):
        candidates = self.registry.find(interface)
        if not candidates:
            raise ServiceNotFoundError(
                f"no available service provides {interface!r}")
        if self.selector is not None:
            return self.selector.choose(interface, candidates)
        return candidates[0]

    def execute_workflow(self, workflow: Workflow,
                         context: Optional[dict] = None) -> ExecutionTrace:
        ctx = dict(context or {})
        trace = ExecutionTrace(workflow.name, workflow.task, succeeded=False)
        try:
            result: Any = None
            for step in workflow.steps:
                service = self._resolve(step.interface)
                trace.services_used.append(service.name)
                args = step.bind_args(ctx)
                result = self.binding.call(service, step.operation, **args)
                if step.save_as is not None:
                    ctx[step.save_as] = result
                trace.steps_run += 1
            trace.succeeded = True
            trace.result = ctx.get("result", result)
        except Exception as exc:  # noqa: BLE001 - recorded, then decided on
            trace.error = f"{type(exc).__name__}: {exc}"
        self.traces.append(trace)
        return trace

    def execute_task(self, task: str,
                     context: Optional[dict] = None) -> ExecutionTrace:
        """Run the best available workflow for ``task``; on failure fall
        through the remaining alternatives (flexibility by selection)."""
        alternatives = self._workflows.get(task)
        if not alternatives:
            raise CompositionError(f"no workflow registered for task {task!r}")
        last: Optional[ExecutionTrace] = None
        for workflow in alternatives:
            trace = self.execute_workflow(workflow, context)
            if trace.succeeded:
                return trace
            last = trace
        assert last is not None
        return last

    # -- introspection ---------------------------------------------------------------

    def viable(self, workflow: Workflow) -> bool:
        """A workflow is viable when every interface it needs has at least
        one available provider."""
        return all(self.registry.find(iface)
                   for iface in workflow.required_interfaces())

    def viable_alternatives(self, task: str) -> list[Workflow]:
        return [w for w in self.alternatives(task) if self.viable(w)]


# Imported at the bottom to avoid a cycle (selection imports workflow types).
from repro.core.selection import SelectionPolicy  # noqa: E402,F401
