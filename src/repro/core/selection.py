"""Flexibility by selection (§2, §3.5).

"Flexibility by selection refers to the situation in which the
architecture has different ways of performing a desired task ... different
services provide the same functionality using the same type of
interfaces."

Selection policies rank equivalent candidates.  The registry hands back
every provider of an interface; the policy picks one using service
quality descriptions, measured metrics, resource state, or simple
rotation.  Policies are services-agnostic strategy objects so benchmarks
can swap them (the same mechanism selects buffer replacement policies one
layer down).
"""

from __future__ import annotations

import itertools
from typing import Optional, Protocol, Sequence

from repro.core.service import Service
from repro.errors import ServiceNotFoundError


class SelectionPolicy(Protocol):
    """Strategy interface: pick one service among equivalent providers."""

    name: str

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service: ...


class FirstAvailablePolicy:
    """Deterministic: the first registered available candidate."""

    name = "first"

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        if not candidates:
            raise ServiceNotFoundError(f"no candidates for {interface!r}")
        return candidates[0]


class RoundRobinPolicy:
    """Rotate across candidates per interface (simple load spreading)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        if not candidates:
            raise ServiceNotFoundError(f"no candidates for {interface!r}")
        counter = self._counters.setdefault(interface, itertools.count())
        return candidates[next(counter) % len(candidates)]


class QualityDrivenPolicy:
    """Rank by the contract's advertised quality description.

    Default scoring prefers low latency, then high availability; weights
    are adjustable so benchmarks can express other preferences (footprint
    for embedded deployments).
    """

    name = "quality"

    def __init__(self, latency_weight: float = 1.0,
                 availability_weight: float = 100.0,
                 footprint_weight: float = 0.0) -> None:
        self.latency_weight = latency_weight
        self.availability_weight = availability_weight
        self.footprint_weight = footprint_weight

    def _score(self, service: Service) -> float:
        quality = service.contract.quality
        latency = quality.latency_ms if quality.latency_ms is not None else 1.0
        score = -self.latency_weight * latency
        score += self.availability_weight * quality.availability
        score -= self.footprint_weight * quality.footprint_kb
        return score

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        if not candidates:
            raise ServiceNotFoundError(f"no candidates for {interface!r}")
        return max(candidates, key=self._score)


class MeasuredLatencyPolicy:
    """Rank by *observed* mean latency (falls back to advertised quality
    for services never invoked) — selection driven by live monitoring
    rather than static contracts."""

    name = "measured"

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        if not candidates:
            raise ServiceNotFoundError(f"no candidates for {interface!r}")

        def key(service: Service) -> float:
            if service.metrics.invocations > 0:
                return service.metrics.mean_latency_s
            advertised = service.contract.quality.latency_ms
            return (advertised or 1.0) / 1000.0

        return min(candidates, key=key)


class ResourceAwarePolicy:
    """Avoid services whose host (property ``device``) raised a pressure
    flag — the Discussion's low-battery redirection expressed as selection.

    ``pressured`` is a live set of device names under resource pressure;
    the distribution substrate maintains it.
    """

    name = "resource-aware"

    def __init__(self, pressured: Optional[set[str]] = None,
                 fallback: Optional[SelectionPolicy] = None) -> None:
        self.pressured = pressured if pressured is not None else set()
        self.fallback = fallback or FirstAvailablePolicy()

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        healthy = [s for s in candidates
                   if s.get_property("device") not in self.pressured]
        return self.fallback.choose(interface, healthy or list(candidates))


POLICIES = {
    cls.name: cls
    for cls in (FirstAvailablePolicy, RoundRobinPolicy, QualityDrivenPolicy,
                MeasuredLatencyPolicy, ResourceAwarePolicy)
}


# -- knob-selection policies (the live engine's decision layer) --------------------
#
# The service policies above rank equivalent *providers*; the policies
# below rank equivalent *configurations* — same selection idea, one
# layer down, now driven by measured workload windows instead of static
# contracts.  Each policy inspects a WorkloadWindow and proposes knob
# values; the KnobAdaptationEngine owns hysteresis (confirm streaks)
# and cooldowns, so policies are free to be reactive and stateless.


from dataclasses import dataclass                    # noqa: E402

from repro.core.observe import WorkloadWindow        # noqa: E402


@dataclass(frozen=True)
class KnobProposal:
    """One policy's suggestion: set ``knob`` to ``value``.

    ``trigger`` names the metric evidence, so the decision log can show
    *why* (e.g. ``"scan_bias=0.92 hit_rate=0.31"``).
    """

    knob: str
    value: object
    trigger: str


class KnobSelectionPolicy(Protocol):
    """Strategy interface: propose knob values for an observed window."""

    name: str

    def propose(self, window: WorkloadWindow) -> list[KnobProposal]: ...


class BufferPolicySelection:
    """Pick the replacement policy from the access pattern.

    Looping scans larger than the pool shred LRU (each pass evicts
    exactly the pages the next pass needs); MRU keeps a stable prefix
    resident.  Point-probe traffic is the opposite: recency wins.
    """

    name = "buffer-policy"

    def __init__(self, min_reads: int = 64,
                 scan_heavy: float = 0.7, point_heavy: float = 0.3,
                 thrash_hit_rate: float = 0.6) -> None:
        self.min_reads = min_reads
        self.scan_heavy = scan_heavy
        self.point_heavy = point_heavy
        self.thrash_hit_rate = thrash_hit_rate

    def propose(self, window: WorkloadWindow) -> list[KnobProposal]:
        if window.reads < self.min_reads:
            return []
        bias = window.scan_bias
        hit_rate = window.buffer_hit_rate
        if bias >= self.scan_heavy and hit_rate < self.thrash_hit_rate:
            return [KnobProposal(
                "buffer_policy", "mru",
                f"scan_bias={bias:.2f} buffer_hit_rate={hit_rate:.2f}")]
        if bias <= self.point_heavy:
            return [KnobProposal(
                "buffer_policy", "lru",
                f"scan_bias={bias:.2f} buffer_hit_rate={hit_rate:.2f}")]
        return []


class ExecutionEngineSelection:
    """Pick the engine per query class from measured latencies.

    Analytic statements (scans/aggregates) want the vectorized engine
    unconditionally — PR 3 measured 2–4x.  Point statements are less
    clear-cut (per-batch overhead vs per-row overhead), so the policy
    trusts measurement: when both engines have enough samples for a
    class, it proposes the faster one; with only one engine sampled it
    leaves the class alone (the engine's exploration phase, not the
    policy, decides to try the other).
    """

    name = "execution-engine"

    def __init__(self, min_class_count: int = 32,
                 min_samples_each: int = 8,
                 advantage: float = 1.15) -> None:
        self.min_class_count = min_class_count
        self.min_samples_each = min_samples_each
        self.advantage = advantage   # required speedup before switching

    def propose(self, window: WorkloadWindow) -> list[KnobProposal]:
        proposals = []
        for query_class, activity in window.classes.items():
            if query_class == "analytic":
                if activity.count >= self.min_class_count // 2:
                    proposals.append(KnobProposal(
                        "engine.analytic", "vectorized",
                        f"analytic_count={activity.count}"))
                continue
            if activity.count < self.min_class_count:
                continue
            sampled = {engine: (count, spent)
                       for engine, (count, spent)
                       in activity.by_engine.items()
                       if count >= self.min_samples_each}
            if len(sampled) < 2:
                continue
            means = {engine: spent / count
                     for engine, (count, spent) in sampled.items()}
            best = min(means, key=means.get)
            worst = max(means, key=means.get)
            if means[worst] >= means[best] * self.advantage:
                proposals.append(KnobProposal(
                    f"engine.{query_class}", best,
                    f"{best}={means[best] * 1e6:.0f}us "
                    f"{worst}={means[worst] * 1e6:.0f}us"))
        return proposals


class LockGranularitySelection:
    """Row locks under contention, stay put otherwise.

    Table-granularity X locks serialize concurrent writers; observed
    lock waits are the direct evidence.  The policy never proposes
    table mode on its own — coarse locks are a deliberate operator
    choice (cheap for single-writer embedded deployments), and without
    waiters there is no measurement to justify forcing it back.
    """

    name = "lock-granularity"

    def __init__(self, min_waits: int = 4) -> None:
        self.min_waits = min_waits

    def propose(self, window: WorkloadWindow) -> list[KnobProposal]:
        if window.lock_waits >= self.min_waits and window.writes:
            return [KnobProposal(
                "lock_granularity", "row",
                f"lock_waits={window.lock_waits} "
                f"writes={window.writes}")]
        return []


class VacuumPacingSelection:
    """Tighten pacing when dead versions pile up, relax when idle.

    High dead fractions slow every scan (each dead version is visited
    and rejected); an aggressive `dead_fraction` trigger reclaims
    sooner.  On a read-mostly window with clean tables, pacing relaxes
    back so vacuum passes stop burning cycles.
    """

    name = "vacuum-pacing"

    def __init__(self, dirty_fraction: float = 0.25,
                 clean_fraction: float = 0.05,
                 tight: float = 0.1, relaxed: float = 0.4,
                 min_rows: int = 256) -> None:
        self.dirty_fraction = dirty_fraction
        self.clean_fraction = clean_fraction
        self.tight = tight
        self.relaxed = relaxed
        self.min_rows = min_rows

    def propose(self, window: WorkloadWindow) -> list[KnobProposal]:
        dirtiest = 0.0
        for activity in window.tables.values():
            if activity.row_count + activity.dead_versions \
                    >= self.min_rows:
                dirtiest = max(dirtiest, activity.dead_fraction)
        if dirtiest >= self.dirty_fraction:
            return [KnobProposal(
                "vacuum_dead_fraction", self.tight,
                f"max_dead_fraction={dirtiest:.2f}")]
        if dirtiest <= self.clean_fraction and window.writes == 0 \
                and window.reads:
            return [KnobProposal(
                "vacuum_dead_fraction", self.relaxed,
                f"max_dead_fraction={dirtiest:.2f} writes=0")]
        return []


class PlanCacheSizeSelection:
    """Grow the statement cache when distinct templates overflow it.

    Evictions plus a poor hit rate mean the working set of statement
    shapes exceeds capacity; doubling is cheap (entries are compiled
    closures, not result data).  A cache sitting mostly empty across a
    busy window shrinks back toward its floor.
    """

    name = "plan-cache-size"

    def __init__(self, min_statements: int = 64,
                 low_hit_rate: float = 0.5, floor: int = 32,
                 ceiling: int = 4096) -> None:
        self.min_statements = min_statements
        self.low_hit_rate = low_hit_rate
        self.floor = floor
        self.ceiling = ceiling

    def propose(self, window: WorkloadWindow) -> list[KnobProposal]:
        traffic = window.plan_cache_hits + window.plan_cache_misses
        if traffic < self.min_statements:
            return []
        capacity = window.plan_cache_capacity
        if window.plan_cache_evictions > 0 \
                and window.plan_cache_hit_rate < self.low_hit_rate \
                and capacity < self.ceiling:
            new = min(max(capacity * 2, self.floor), self.ceiling)
            return [KnobProposal(
                "plan_cache_size", new,
                f"evictions={window.plan_cache_evictions} "
                f"hit_rate={window.plan_cache_hit_rate:.2f}")]
        if capacity > self.floor \
                and window.plan_cache_size * 4 <= capacity \
                and window.plan_cache_evictions == 0:
            new = max(capacity // 2, self.floor,
                      window.plan_cache_size * 2)
            if new < capacity:
                return [KnobProposal(
                    "plan_cache_size", new,
                    f"size={window.plan_cache_size} "
                    f"capacity={capacity}")]
        return []


KNOB_POLICIES = {
    cls.name: cls
    for cls in (BufferPolicySelection, ExecutionEngineSelection,
                LockGranularitySelection, VacuumPacingSelection,
                PlanCacheSizeSelection)
}


def default_knob_policies() -> list:
    """The standard policy set for ``Database(adaptive=True)``."""
    return [cls() for cls in KNOB_POLICIES.values()]
