"""Flexibility by selection (§2, §3.5).

"Flexibility by selection refers to the situation in which the
architecture has different ways of performing a desired task ... different
services provide the same functionality using the same type of
interfaces."

Selection policies rank equivalent candidates.  The registry hands back
every provider of an interface; the policy picks one using service
quality descriptions, measured metrics, resource state, or simple
rotation.  Policies are services-agnostic strategy objects so benchmarks
can swap them (the same mechanism selects buffer replacement policies one
layer down).
"""

from __future__ import annotations

import itertools
from typing import Optional, Protocol, Sequence

from repro.core.service import Service
from repro.errors import ServiceNotFoundError


class SelectionPolicy(Protocol):
    """Strategy interface: pick one service among equivalent providers."""

    name: str

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service: ...


class FirstAvailablePolicy:
    """Deterministic: the first registered available candidate."""

    name = "first"

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        if not candidates:
            raise ServiceNotFoundError(f"no candidates for {interface!r}")
        return candidates[0]


class RoundRobinPolicy:
    """Rotate across candidates per interface (simple load spreading)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        if not candidates:
            raise ServiceNotFoundError(f"no candidates for {interface!r}")
        counter = self._counters.setdefault(interface, itertools.count())
        return candidates[next(counter) % len(candidates)]


class QualityDrivenPolicy:
    """Rank by the contract's advertised quality description.

    Default scoring prefers low latency, then high availability; weights
    are adjustable so benchmarks can express other preferences (footprint
    for embedded deployments).
    """

    name = "quality"

    def __init__(self, latency_weight: float = 1.0,
                 availability_weight: float = 100.0,
                 footprint_weight: float = 0.0) -> None:
        self.latency_weight = latency_weight
        self.availability_weight = availability_weight
        self.footprint_weight = footprint_weight

    def _score(self, service: Service) -> float:
        quality = service.contract.quality
        latency = quality.latency_ms if quality.latency_ms is not None else 1.0
        score = -self.latency_weight * latency
        score += self.availability_weight * quality.availability
        score -= self.footprint_weight * quality.footprint_kb
        return score

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        if not candidates:
            raise ServiceNotFoundError(f"no candidates for {interface!r}")
        return max(candidates, key=self._score)


class MeasuredLatencyPolicy:
    """Rank by *observed* mean latency (falls back to advertised quality
    for services never invoked) — selection driven by live monitoring
    rather than static contracts."""

    name = "measured"

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        if not candidates:
            raise ServiceNotFoundError(f"no candidates for {interface!r}")

        def key(service: Service) -> float:
            if service.metrics.invocations > 0:
                return service.metrics.mean_latency_s
            advertised = service.contract.quality.latency_ms
            return (advertised or 1.0) / 1000.0

        return min(candidates, key=key)


class ResourceAwarePolicy:
    """Avoid services whose host (property ``device``) raised a pressure
    flag — the Discussion's low-battery redirection expressed as selection.

    ``pressured`` is a live set of device names under resource pressure;
    the distribution substrate maintains it.
    """

    name = "resource-aware"

    def __init__(self, pressured: Optional[set[str]] = None,
                 fallback: Optional[SelectionPolicy] = None) -> None:
        self.pressured = pressured if pressured is not None else set()
        self.fallback = fallback or FirstAvailablePolicy()

    def choose(self, interface: str,
               candidates: Sequence[Service]) -> Service:
        healthy = [s for s in candidates
                   if s.get_property("device") not in self.pressured]
        return self.fallback.choose(interface, healthy or list(candidates))


POLICIES = {
    cls.name: cls
    for cls in (FirstAvailablePolicy, RoundRobinPolicy, QualityDrivenPolicy,
                MeasuredLatencyPolicy, ResourceAwarePolicy)
}
