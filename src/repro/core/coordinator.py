"""Coordinator services (§3.1, §3.3, §3.7).

"Functional services ... are managed by coordinator services that have the
task to monitor the service activity and handle service reconfigurations
as required."  And in the operational phase: "coordinator services monitor
architectural changes and service properties.  If a change occurs resource
management services find alternate workflows to manage the new situation."

The coordinator here does exactly that: it sweeps the services it manages
(a pull-style heartbeat — deterministic and test-friendly), publishes
state-change events, fields Figure 6's ``release_resources`` requests,
and when it detects a failure hands the situation to the adaptation
engine, recording how long the reconfiguration took and what it did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.contract import Interface, ServiceContract, op
from repro.core.events import EventBus
from repro.core.registry import ServiceRegistry
from repro.core.resource import ResourceManager
from repro.core.service import Service, ServiceState


def _coordinator_contract(name: str) -> ServiceContract:
    return ServiceContract(
        service_name=name,
        interfaces=(
            Interface("Coordinator", (
                op("monitor", returns="dict",
                   semantics="sweep managed services, publish changes"),
                op("release_resources", "service:str", "resource:str",
                   returns="float",
                   semantics="free resources held by a managed service"),
                op("status", returns="dict"),
            )),
        ),
        description="monitors service activity and handles reconfigurations",
        tags=frozenset({"coordinator", "kernel"}))


@dataclass
class Incident:
    """One detected problem and what the coordinator did about it."""

    service: str
    kind: str                      # "failed" | "degraded" | "recovered"
    action: str = ""               # e.g. "adaptation", "none"
    detected_at: float = 0.0
    resolved: bool = False
    details: dict = field(default_factory=dict)


class CoordinatorService(Service):
    """Monitors a set of services; delegates repair to the adaptation
    engine when one fails."""

    layer = "kernel"

    def __init__(self, name: str, registry: ServiceRegistry,
                 events: Optional[EventBus] = None,
                 resources: Optional[ResourceManager] = None,
                 adaptation: Optional["AdaptationEngine"] = None) -> None:
        super().__init__(name, _coordinator_contract(name))
        self.registry = registry
        self.events = events or registry.events
        self.resources = resources
        self.adaptation = adaptation
        self.managed: set[str] = set()
        self.incidents: list[Incident] = []
        self._last_states: dict[str, ServiceState] = {}

    # -- management -----------------------------------------------------------------

    def manage(self, service_name: str) -> None:
        self.managed.add(service_name)
        service = self.registry.maybe_get(service_name)
        if service is not None:
            self._last_states[service_name] = service.state

    def unmanage(self, service_name: str) -> None:
        self.managed.discard(service_name)
        self._last_states.pop(service_name, None)

    # -- operations -------------------------------------------------------------------

    def op_monitor(self) -> dict:
        """One monitoring sweep: detect state changes, verify availability
        of alternatives, trigger adaptation for failures."""
        changes: list[dict] = []
        for name in sorted(self.managed):
            service = self.registry.maybe_get(name)
            current = service.state if service is not None else None
            previous = self._last_states.get(name)
            if current == previous:
                continue
            change = {"service": name,
                      "from": previous.value if previous else None,
                      "to": current.value if current else "removed"}
            changes.append(change)
            self._last_states[name] = current
            if current in (None, ServiceState.FAILED, ServiceState.STOPPED):
                self._handle_outage(name, change)
            elif current is ServiceState.DEGRADED:
                self.events.publish("service.degraded", change,
                                    source=self.name)
            elif current is ServiceState.OPERATIONAL and previous in (
                    ServiceState.FAILED, ServiceState.DEGRADED, None):
                self.incidents.append(Incident(
                    name, "recovered", detected_at=time.perf_counter(),
                    resolved=True))
                self.events.publish("service.recovered", change,
                                    source=self.name)
        return {"changes": changes, "managed": len(self.managed)}

    def _handle_outage(self, name: str, change: dict) -> None:
        incident = Incident(name, "failed",
                            detected_at=time.perf_counter(),
                            details=change)
        self.incidents.append(incident)
        self.events.publish("service.failed", change, source=self.name)
        if self.adaptation is not None:
            outcome = self.adaptation.handle_failure(name)
            incident.action = outcome.strategy
            incident.resolved = outcome.succeeded
            incident.details["adaptation"] = outcome.describe()

    def op_release_resources(self, service: str,
                             resource: str) -> float:
        """Figure 6: a service "invokes a 'Release Resources' method on the
        coordinator services to free additional resources"."""
        if self.resources is None:
            return 0.0
        released = 0.0
        # Ask every *other* managed service to give back what it holds.
        for held_by in sorted(self.managed):
            if held_by == service:
                continue
            released += self.resources.release(held_by, resource)
            holder = self.registry.maybe_get(held_by)
            if holder is not None:
                # Advise the service of the new constraint via properties
                # ("component properties can then be set by ... coordinator
                # services to adjust ... according to the current
                # architecture constraints").
                holder.set_property("resource_constrained", resource)
        self.events.publish(
            "coordinator.resources_released",
            {"requested_by": service, "resource": resource,
             "released": released},
            source=self.name)
        return released

    def op_status(self) -> dict:
        states = {}
        for name in sorted(self.managed):
            service = self.registry.maybe_get(name)
            states[name] = service.state.value if service else "removed"
        return {
            "coordinator": self.name,
            "managed": states,
            "incidents": len(self.incidents),
            "unresolved": sum(1 for i in self.incidents if not i.resolved
                              and i.kind == "failed"),
        }


# Late import for type reference only (adaptation imports coordinator types).
from repro.core.adaptation import AdaptationEngine  # noqa: E402,F401
