"""Workload observation for the self-tuning kernel (§2's "monitoring").

The adaptation architecture is observe → decide → act.  This module is
the *observe* leg: :class:`WorkloadObserver` turns the engine's cheap
cumulative counters (per-table scans/probes/mutations, buffer hit rate,
plan-cache traffic, lock waits, per-query-class timings, vacuum gauges)
into **delta windows** — what happened since the previous sample — with
a bounded history so decision policies can demand trends, not blips.

Design constraints, per the refactor brief:

- *no new locks on hot paths*: every counter the observer reads is a
  plain integer (or small dict) bumped by the executing thread; samples
  tolerate torn reads — they are advisory measurements, not invariants;
- *cheap*: one sample walks the table dict once and copies a handful of
  ints; it is safe to take every few hundred statements.

Windows are the only currency between layers: selection policies
(:mod:`repro.core.selection`), the index advisor
(:mod:`repro.core.advisor`) and the knob engine
(:mod:`repro.core.adaptation`) all consume :class:`WorkloadWindow`, so
they can be unit-tested on synthetic windows without a database.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TableActivity:
    """One table's activity inside a window (deltas unless noted)."""

    seq_scans: int = 0
    index_probes: int = 0
    mutations: int = 0
    #: Point-in-time gauges (window-end absolutes, not deltas).
    row_count: int = 0
    dead_versions: int = 0
    #: ``{(column, op): count}`` sargable predicate sightings.
    predicates: dict = field(default_factory=dict)
    #: ``{index_name: probes}`` per-index probe deltas.
    index_probe_counts: dict = field(default_factory=dict)

    @property
    def reads(self) -> int:
        return self.seq_scans + self.index_probes

    @property
    def dead_fraction(self) -> float:
        total = self.row_count + self.dead_versions
        return self.dead_versions / total if total else 0.0

    @property
    def scan_bias(self) -> float:
        """Fraction of read accesses served by sequential scans."""
        reads = self.reads
        return self.seq_scans / reads if reads else 0.0


@dataclass
class ClassActivity:
    """Per-query-class execution deltas, split by engine."""

    #: ``{engine: (count, seconds)}``
    by_engine: dict = field(default_factory=dict)

    @property
    def count(self) -> int:
        return sum(c for c, _ in self.by_engine.values())

    @property
    def time_s(self) -> float:
        return sum(t for _, t in self.by_engine.values())

    def mean_latency_s(self, engine: Optional[str] = None) -> float:
        if engine is None:
            return self.time_s / self.count if self.count else 0.0
        count, spent = self.by_engine.get(engine, (0, 0.0))
        return spent / count if count else 0.0


@dataclass
class WorkloadWindow:
    """Everything that happened between two observer samples."""

    started: float
    ended: float
    statements: int = 0
    tables: dict = field(default_factory=dict)     # name -> TableActivity
    classes: dict = field(default_factory=dict)    # class -> ClassActivity
    buffer_hits: int = 0
    buffer_misses: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0
    plan_cache_size: int = 0                       # absolute at window end
    plan_cache_capacity: int = 0                   # absolute at window end
    lock_waits: int = 0
    vacuum_runs: int = 0
    versions_reclaimed: int = 0

    @property
    def duration_s(self) -> float:
        return max(self.ended - self.started, 1e-9)

    @property
    def buffer_hit_rate(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 1.0

    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 1.0

    @property
    def reads(self) -> int:
        return sum(t.reads for t in self.tables.values())

    @property
    def writes(self) -> int:
        return sum(t.mutations for t in self.tables.values())

    @property
    def seq_scans(self) -> int:
        return sum(t.seq_scans for t in self.tables.values())

    @property
    def index_probes(self) -> int:
        return sum(t.index_probes for t in self.tables.values())

    @property
    def scan_bias(self) -> float:
        reads = self.reads
        return self.seq_scans / reads if reads else 0.0

    @property
    def write_fraction(self) -> float:
        total = self.reads + self.writes
        return self.writes / total if total else 0.0

    def class_share(self, name: str) -> float:
        total = sum(c.count for c in self.classes.values())
        activity = self.classes.get(name)
        return activity.count / total if activity is not None and total \
            else 0.0

    def describe(self) -> dict:
        """Compact summary for decision logs and ``stats()``."""
        return {
            "statements": self.statements,
            "duration_s": round(self.duration_s, 4),
            "reads": self.reads,
            "writes": self.writes,
            "scan_bias": round(self.scan_bias, 3),
            "buffer_hit_rate": round(self.buffer_hit_rate, 3),
            "plan_cache_hit_rate": round(self.plan_cache_hit_rate, 3),
            "lock_waits": self.lock_waits,
            "classes": {name: activity.count
                        for name, activity in self.classes.items()},
        }


def merge_windows(windows: list[WorkloadWindow]) -> WorkloadWindow:
    """Fold consecutive windows into one (trend smoothing)."""
    if not windows:
        return WorkloadWindow(time.time(), time.time())
    merged = WorkloadWindow(windows[0].started, windows[-1].ended)
    for window in windows:
        merged.statements += window.statements
        merged.buffer_hits += window.buffer_hits
        merged.buffer_misses += window.buffer_misses
        merged.plan_cache_hits += window.plan_cache_hits
        merged.plan_cache_misses += window.plan_cache_misses
        merged.plan_cache_evictions += window.plan_cache_evictions
        merged.lock_waits += window.lock_waits
        merged.vacuum_runs += window.vacuum_runs
        merged.versions_reclaimed += window.versions_reclaimed
        for name, activity in window.tables.items():
            into = merged.tables.setdefault(name, TableActivity())
            into.seq_scans += activity.seq_scans
            into.index_probes += activity.index_probes
            into.mutations += activity.mutations
            into.row_count = activity.row_count
            into.dead_versions = activity.dead_versions
            for key, count in activity.predicates.items():
                into.predicates[key] = into.predicates.get(key, 0) + count
            for key, count in activity.index_probe_counts.items():
                into.index_probe_counts[key] = \
                    into.index_probe_counts.get(key, 0) + count
        for name, activity in window.classes.items():
            into = merged.classes.setdefault(name, ClassActivity())
            for engine, (count, spent) in activity.by_engine.items():
                have = into.by_engine.get(engine, (0, 0.0))
                into.by_engine[engine] = (have[0] + count,
                                          have[1] + spent)
    merged.plan_cache_size = windows[-1].plan_cache_size
    merged.plan_cache_capacity = windows[-1].plan_cache_capacity
    return merged


class WorkloadObserver:
    """Delta-windowed view over a database's cumulative counters.

    ``source`` is a zero-argument callable returning the cumulative
    counter snapshot (:meth:`repro.data.database.Database.counters`);
    the observer diffs consecutive snapshots into
    :class:`WorkloadWindow` objects and keeps a bounded history.
    """

    def __init__(self, source, history: int = 32) -> None:
        self._source = source
        self.windows: deque[WorkloadWindow] = deque(maxlen=history)
        self._last: Optional[dict] = None
        self.samples = 0

    def sample(self) -> WorkloadWindow:
        """Take one sample; the returned window covers everything since
        the previous sample (the first window is empty by definition —
        it establishes the baseline)."""
        current = self._source()
        previous = self._last
        self._last = current
        self.samples += 1
        if previous is None:
            window = WorkloadWindow(current["at"], current["at"])
            window.plan_cache_size = current["plan_cache"]["size"]
            window.plan_cache_capacity = \
                current["plan_cache"]["capacity"]
            self.windows.append(window)
            return window
        window = self._diff(previous, current)
        self.windows.append(window)
        return window

    def window(self, n: int = 1) -> WorkloadWindow:
        """The last window, or the last ``n`` merged."""
        recent = list(self.windows)[-n:]
        return merge_windows(recent)

    # -- delta computation -------------------------------------------------------

    @staticmethod
    def _diff(previous: dict, current: dict) -> WorkloadWindow:
        window = WorkloadWindow(previous["at"], current["at"])
        window.statements = current["statements"] \
            - previous["statements"]
        prev_tables = previous["tables"]
        for name, now in current["tables"].items():
            then = prev_tables.get(name, {})
            activity = TableActivity(
                seq_scans=now["seq_scans"] - then.get("seq_scans", 0),
                index_probes=now["index_probes"]
                - then.get("index_probes", 0),
                mutations=now["mutations"] - then.get("mutations", 0),
                row_count=now["row_count"],
                dead_versions=now["dead_versions"])
            then_predicates = then.get("predicates", {})
            for key, count in now["predicates"].items():
                delta = count - then_predicates.get(key, 0)
                if delta > 0:
                    activity.predicates[key] = delta
            then_indexes = then.get("indexes", {})
            for key, count in now["indexes"].items():
                activity.index_probe_counts[key] = \
                    count - then_indexes.get(key, 0)
            window.tables[name] = activity
        for name, now in current["classes"].items():
            then = previous["classes"].get(name, {})
            activity = ClassActivity()
            for engine, (count, spent) in now.items():
                then_count, then_spent = then.get(engine, (0, 0.0))
                if count - then_count > 0:
                    activity.by_engine[engine] = (count - then_count,
                                                  spent - then_spent)
            if activity.by_engine:
                window.classes[name] = activity
        window.buffer_hits = current["buffer"]["hits"] \
            - previous["buffer"]["hits"]
        window.buffer_misses = current["buffer"]["misses"] \
            - previous["buffer"]["misses"]
        pc_now, pc_then = current["plan_cache"], previous["plan_cache"]
        window.plan_cache_hits = pc_now["hits"] - pc_then["hits"]
        window.plan_cache_misses = pc_now["misses"] - pc_then["misses"]
        window.plan_cache_evictions = pc_now["evictions"] \
            - pc_then["evictions"]
        window.plan_cache_size = pc_now["size"]
        window.plan_cache_capacity = pc_now["capacity"]
        window.lock_waits = current["lock_waits"] \
            - previous["lock_waits"]
        window.vacuum_runs = current["vacuum"]["runs"] \
            - previous["vacuum"]["runs"]
        window.versions_reclaimed = \
            current["vacuum"]["versions_reclaimed"] \
            - previous["vacuum"]["versions_reclaimed"]
        return window
