"""Communication bindings and their cost models (§3.2).

"Service communication is done through well-defined communication
protocols, such as SOAP or RMI."  Real wire protocols are pointless inside
one process, but their *costs* are exactly what makes the paper's deferred
granularity study interesting: fine-grained RISC-style decomposition pays
a per-call protocol tax.  Each binding therefore charges a simulated cost
(per call + per payload byte, with SOAP additionally paying a verbose
envelope factor) into a shared :class:`SimClock`, and the benchmarks sweep
binding choices to expose the coarse-vs-fine crossover.

The paper also notes "a file system can be used to send data between their
interfaces" — :class:`FileBinding` does that literally through an
in-memory spool, and is the slowest of the set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.errors import KernelError


class SimClock:
    """Accumulates simulated seconds; shared across bindings and devices."""

    def __init__(self) -> None:
        self.now = 0.0

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise KernelError("cannot charge negative time")
        self.now += seconds

    def reset(self) -> None:
        self.now = 0.0


def _payload_size(args: dict[str, Any], result: Any = None) -> int:
    """Approximate marshalled size of a call's arguments (and result)."""

    def default(obj: Any) -> str:
        if isinstance(obj, (bytes, bytearray)):
            return f"<{len(obj)} bytes>"
        return repr(obj)

    size = len(json.dumps(args, default=default))
    # bytes payloads are carried raw, not via their repr
    for value in args.values():
        if isinstance(value, (bytes, bytearray)):
            size += len(value)
    if result is not None and isinstance(result, (bytes, bytearray)):
        size += len(result)
    return size


@dataclass(frozen=True)
class BindingCost:
    per_call: float          # fixed protocol overhead per invocation
    per_byte: float          # marshalling cost per payload byte
    envelope_factor: float = 1.0  # payload inflation (SOAP XML verbosity)

    def cost_of(self, payload_bytes: int) -> float:
        return self.per_call + self.per_byte * payload_bytes * \
            self.envelope_factor


class Binding:
    """Base binding: route a call to a service and charge its cost."""

    name = "abstract"
    cost = BindingCost(0.0, 0.0)

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self.calls = 0
        self.bytes_carried = 0

    def call(self, service, operation: str, **args: Any) -> Any:
        payload = _payload_size(args)
        result = self._transport(service, operation, args)
        payload += _payload_size({}, result)
        self.calls += 1
        self.bytes_carried += payload
        self.clock.charge(self.cost.cost_of(payload))
        return result

    def _transport(self, service, operation: str, args: dict) -> Any:
        return service.invoke(operation, **args)


class LocalBinding(Binding):
    """In-process direct dispatch: a plain function call, zero protocol tax.

    This models the monolithic / tightly-coupled end of the design space.
    """

    name = "local"
    cost = BindingCost(per_call=0.0, per_byte=0.0)


class SimulatedRmiBinding(Binding):
    """Binary RPC: small fixed overhead, cheap marshalling."""

    name = "rmi"
    cost = BindingCost(per_call=50e-6, per_byte=1e-9)


class SimulatedSoapBinding(Binding):
    """Web-service call: heavy envelope, XML-inflated payload."""

    name = "soap"
    cost = BindingCost(per_call=500e-6, per_byte=4e-9, envelope_factor=3.0)

    def _transport(self, service, operation: str, args: dict) -> Any:
        # Serialise/deserialise through the envelope to keep the simulation
        # honest for JSON-representable arguments (bytes pass through raw,
        # as a real attachment would).
        safe = {k: v for k, v in args.items()
                if not isinstance(v, (bytes, bytearray))}
        json.loads(json.dumps(safe, default=repr))
        return service.invoke(operation, **args)


class FileBinding(Binding):
    """File-system message passing (§3's deliberately extreme example)."""

    name = "file"
    cost = BindingCost(per_call=5e-3, per_byte=10e-9)

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(clock)
        self.spool: list[tuple[str, dict]] = []

    def _transport(self, service, operation: str, args: dict) -> Any:
        # Spool the request "file", then have the service consume it.
        self.spool.append((operation, args))
        operation, args = self.spool.pop(0)
        return service.invoke(operation, **args)


BINDINGS: dict[str, type[Binding]] = {
    cls.name: cls for cls in (LocalBinding, SimulatedRmiBinding,
                              SimulatedSoapBinding, FileBinding)
}


def make_binding(name: str, clock: SimClock | None = None) -> Binding:
    try:
        return BINDINGS[name](clock)
    except KeyError:
        raise KernelError(
            f"unknown binding {name!r}; known: {sorted(BINDINGS)}") from None
