"""Architecture properties (§3.6).

"To achieve this we introduce architecture properties that can be set by
users or by monitoring services when existing components are removed or
are erroneous."

A small observable key/value store scoped to the whole architecture (as
opposed to per-service properties on :class:`~repro.core.service.Service`).
Coordinators and users both write it; changes are published on the event
bus so monitoring services can react without polling.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.events import EventBus


class ArchitectureProperties:
    """Observable architecture-wide property store."""

    def __init__(self, events: Optional[EventBus] = None) -> None:
        self._values: dict[str, Any] = {}
        self.events = events or EventBus()

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def set(self, key: str, value: Any, source: str = "user") -> None:
        old = self._values.get(key)
        self._values[key] = value
        if old != value:
            self.events.publish(
                "architecture.property_changed",
                {"key": key, "old": old, "new": value, "source": source},
                source=source)

    def delete(self, key: str, source: str = "user") -> None:
        if key in self._values:
            old = self._values.pop(key)
            self.events.publish(
                "architecture.property_changed",
                {"key": key, "old": old, "new": None, "source": source},
                source=source)

    def snapshot(self) -> dict:
        return dict(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values
