"""Typed registry of the engine's runtime-switchable knobs.

The last nine PRs grew a dozen configuration switches, each settable
only in the :class:`~repro.data.database.Database` constructor and each
stored in a different component (buffer pool, planner default, lock
protocol, vacuum pacing, plan cache, daemon intervals).  This module is
the *act* leg of observe → decide → act: every such setting becomes a
:class:`Knob` with a typed domain, a live getter, and a safe online
``apply()`` — so the adaptation engine (and operators, through
``db.knobs``) can re-configure a running engine without a restart, and
every change is validated, recorded, and revertible.

Safety of the online transitions (why ``apply`` never needs to quiesce
the engine):

- ``buffer_policy`` swaps the replacement strategy under the pool lock
  and re-seeds it with the resident pages; pinned pages are never
  victims regardless of policy.
- ``execution_engine`` (and the per-class overrides) are read per
  statement; the plan cache validates each entry against the effective
  engine, so cached plans compiled for the old engine self-invalidate.
- ``lock_granularity`` is read per statement; in-flight statements keep
  the protocol they started with, which is always lock-compatible
  (row-mode statements take IX + row X; table mode takes X).
- vacuum pacing / ``plan_cache_size`` / daemon intervals are advisory
  numbers read at trigger time; shrinking the plan cache evicts LRU
  entries immediately under the cache lock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import AdaptationError


@dataclass
class KnobTransition:
    """One recorded knob change (the decision log's payload)."""

    knob: str
    old: Any
    new: Any
    at: float
    reason: str
    source: str = "manual"         # "manual" | "adaptive"

    def describe(self) -> dict:
        return {"knob": self.knob, "old": self.old, "new": self.new,
                "at": self.at, "reason": self.reason,
                "source": self.source}


@dataclass
class Knob:
    """A runtime-switchable setting with a typed, validated domain.

    ``getter`` returns the live value; ``setter`` applies a validated
    new value to the owning component.  ``choices`` (enums) or
    ``bounds`` (numerics, inclusive) constrain the domain; ``nullable``
    admits ``None`` (daemon intervals use it for "off").
    """

    name: str
    kind: str                                  # "enum" | "int" | "float"
    getter: Callable[[], Any]
    setter: Callable[[Any], None]
    description: str = ""
    choices: Optional[Sequence[Any]] = None
    bounds: Optional[tuple] = None             # (lo, hi), either None
    nullable: bool = False

    def current(self) -> Any:
        return self.getter()

    def validate(self, value: Any) -> Any:
        if value is None:
            if not self.nullable:
                raise AdaptationError(f"knob {self.name!r} is not "
                                      f"nullable")
            return None
        if self.kind == "enum":
            if self.choices is not None and value not in self.choices:
                raise AdaptationError(
                    f"knob {self.name!r}: {value!r} not in "
                    f"{sorted(self.choices)}")
            return value
        try:
            value = int(value) if self.kind == "int" else float(value)
        except (TypeError, ValueError):
            raise AdaptationError(
                f"knob {self.name!r}: {value!r} is not {self.kind}"
            ) from None
        if self.bounds is not None:
            lo, hi = self.bounds
            if lo is not None and value < lo:
                raise AdaptationError(
                    f"knob {self.name!r}: {value!r} below minimum {lo}")
            if hi is not None and value > hi:
                raise AdaptationError(
                    f"knob {self.name!r}: {value!r} above maximum {hi}")
        return value

    def describe(self) -> dict:
        entry = {"kind": self.kind, "value": self.current(),
                 "description": self.description}
        if self.choices is not None:
            entry["choices"] = list(self.choices)
        if self.bounds is not None:
            entry["bounds"] = list(self.bounds)
        return entry


class KnobRegistry:
    """All runtime knobs of one engine, with transition history.

    ``set()`` validates, applies, and records; an ``apply`` that raises
    re-applies the old value (best effort) so a failed transition never
    leaves the engine half-configured.  ``revert()`` re-applies the
    value a knob held before its most recent transition.
    """

    def __init__(self, history: int = 256) -> None:
        self._knobs: dict[str, Knob] = {}
        self.history: deque[KnobTransition] = deque(maxlen=history)
        self._lock = threading.Lock()     # config plane only, not hot

    def register(self, knob: Knob) -> Knob:
        if knob.name in self._knobs:
            raise AdaptationError(f"knob {knob.name!r} already "
                                  f"registered")
        self._knobs[knob.name] = knob
        return knob

    def get(self, name: str) -> Knob:
        try:
            return self._knobs[name]
        except KeyError:
            raise AdaptationError(
                f"no knob {name!r}; known: {sorted(self._knobs)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._knobs

    def names(self) -> list[str]:
        return sorted(self._knobs)

    def set(self, name: str, value: Any, reason: str = "",
            source: str = "manual") -> Optional[KnobTransition]:
        """Apply ``value`` to knob ``name``; returns the recorded
        transition, or None when the knob already holds the value."""
        knob = self.get(name)
        value = knob.validate(value)
        with self._lock:
            old = knob.current()
            if old == value:
                return None
            try:
                knob.setter(value)
            except BaseException:
                try:
                    knob.setter(old)
                except Exception:  # noqa: BLE001 — best-effort restore
                    pass
                raise
            transition = KnobTransition(name, old, value, time.time(),
                                        reason, source)
            self.history.append(transition)
            return transition

    def revert(self, name: str,
               reason: str = "revert") -> Optional[KnobTransition]:
        """Undo the most recent transition of ``name`` (None when the
        knob was never changed)."""
        last = None
        for transition in reversed(self.history):
            if transition.knob == name:
                last = transition
                break
        if last is None:
            return None
        return self.set(name, last.old, reason=reason,
                        source=last.source)

    def snapshot(self) -> dict:
        """``{name: current value}`` for every knob."""
        return {name: knob.current()
                for name, knob in sorted(self._knobs.items())}

    def describe(self) -> dict:
        """Full typed description (docs / stats surface)."""
        return {name: knob.describe()
                for name, knob in sorted(self._knobs.items())}

    def transitions(self, source: Optional[str] = None) -> list[dict]:
        return [t.describe() for t in self.history
                if source is None or t.source == source]

    def adaptive_values(self) -> dict:
        """Latest adaptively-applied value per knob (EXPLAIN surface)."""
        values: dict[str, Any] = {}
        for transition in self.history:
            if transition.source == "adaptive":
                values[transition.knob] = transition.new
        return values


# -- the engine's knob set ---------------------------------------------------------


def build_registry(db) -> KnobRegistry:
    """Wire every runtime-switchable Database setting into a registry.

    This is the one place that knows where each setting lives — the
    cleanup of the constructor-only configuration previously scattered
    across ``data/database.py``, ``storage/`` and ``data/sql/``.
    """
    from repro.data.database import Database  # noqa: F401  (doc anchor)

    registry = KnobRegistry()
    registry.register(Knob(
        "buffer_policy", "enum",
        getter=lambda: db.pool.policy.name,
        setter=db.pool.set_policy,
        choices=("lru", "mru", "fifo", "clock", "lfu"),
        description="buffer replacement policy (online swap re-seeds "
                    "the policy with resident pages)"))
    registry.register(Knob(
        "execution_engine", "enum",
        getter=lambda: db.execution_engine,
        setter=lambda v: setattr(db, "execution_engine", v),
        choices=("vectorized", "row"),
        description="default execution engine; cached plans for the "
                    "old engine self-invalidate"))
    for query_class in ("point", "analytic", "dml"):
        registry.register(Knob(
            f"engine.{query_class}", "enum",
            getter=(lambda qc: lambda: db.engine_overrides.get(
                qc, "default"))(query_class),
            setter=(lambda qc: lambda v: (
                db.engine_overrides.pop(qc, None) if v == "default"
                else db.engine_overrides.__setitem__(qc, v)))(
                    query_class),
            choices=("default", "vectorized", "row"),
            description=f"engine override for {query_class} "
                        f"statements ('default' = execution_engine)"))
    registry.register(Knob(
        "lock_granularity", "enum",
        getter=lambda: db.lock_granularity,
        setter=lambda v: setattr(db, "lock_granularity", v),
        choices=("row", "table"),
        description="write-lock granularity, read per statement"))
    registry.register(Knob(
        "vacuum_threshold", "int",
        getter=lambda: db.vacuum_manager.threshold,
        setter=lambda v: setattr(db.vacuum_manager, "threshold", v),
        bounds=(1, None),
        description="absolute dead-version autovacuum trigger"))
    registry.register(Knob(
        "vacuum_dead_fraction", "float",
        getter=lambda: db.vacuum_manager.dead_fraction,
        setter=lambda v: setattr(db.vacuum_manager, "dead_fraction", v),
        bounds=(0.01, 1.0),
        description="fraction-based autovacuum pacing"))
    registry.register(Knob(
        "vacuum_min_dead", "int",
        getter=lambda: db.vacuum_manager.min_dead,
        setter=lambda v: setattr(db.vacuum_manager, "min_dead", v),
        bounds=(1, None),
        description="dead-version floor for fraction-based pacing"))
    registry.register(Knob(
        "mirror_min_rows", "int",
        getter=lambda: db.vacuum_manager.mirror_min_rows,
        setter=lambda v: setattr(db.vacuum_manager, "mirror_min_rows",
                                 v),
        bounds=(0, None),
        description="minimum table rows before auto-vacuum builds a "
                    "columnar mirror"))
    registry.register(Knob(
        "vacuum_interval_s", "float",
        getter=lambda: db.vacuum_manager.interval_s,
        setter=db.vacuum_manager.set_interval,
        bounds=(0.001, None), nullable=True,
        description="vacuum daemon interval (None = daemon off)"))
    registry.register(Knob(
        "scrub_interval_s", "float",
        getter=lambda: db.scrub_manager.interval_s,
        setter=db.scrub_manager.set_interval,
        bounds=(0.001, None), nullable=True,
        description="scrub daemon interval (None = daemon off)"))
    registry.register(Knob(
        "plan_cache_size", "int",
        getter=lambda: db._plan_cache.capacity,
        setter=db._plan_cache.resize,
        bounds=(0, 65536),
        description="statement-cache capacity (0 disables; shrinking "
                    "evicts LRU immediately)"))
    return registry
