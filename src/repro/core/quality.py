"""Service quality measurement (§4's open issue).

"An open issue remains which service qualities are generally important in
a DBMS and what methods or metrics should be used to quantify them."

This module takes a position the benchmarks then exercise: the qualities
that matter are **latency**, **throughput**, **availability**, and
**footprint**, measured per service from its metrics and lifecycle
history, and aggregated into a comparable scorecard.  E7 reports these
for storage services under load.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.registry import ServiceRegistry
from repro.core.service import Service, ServiceState


@dataclass
class QualityReport:
    """Measured qualities of one service at a point in time."""

    service: str
    mean_latency_s: float
    throughput_ops: float
    availability: float
    failure_rate: float
    footprint_kb: float
    invocations: int

    def score(self, latency_weight: float = 1.0,
              availability_weight: float = 1.0) -> float:
        """Single comparable figure: higher is better."""
        latency_term = -latency_weight * math.log10(
            max(self.mean_latency_s, 1e-9))
        return latency_term + availability_weight * self.availability


class AvailabilityTracker:
    """Tracks the fraction of wall-clock time a service was available."""

    def __init__(self) -> None:
        self._windows: dict[str, list[tuple[float, bool]]] = {}

    def observe(self, service: Service) -> None:
        history = self._windows.setdefault(service.name, [])
        history.append((time.perf_counter(), service.available))

    def availability(self, service_name: str) -> float:
        history = self._windows.get(service_name, [])
        if len(history) < 2:
            return 1.0 if not history or history[-1][1] else 0.0
        up = total = 0.0
        for (t0, was_up), (t1, _) in zip(history, history[1:]):
            span = t1 - t0
            total += span
            if was_up:
                up += span
        return up / total if total > 0 else 1.0


class QualityMonitor:
    """Builds quality reports for registered services."""

    def __init__(self, registry: ServiceRegistry) -> None:
        self.registry = registry
        self.availability = AvailabilityTracker()
        self._window_started = time.perf_counter()

    def observe_all(self) -> None:
        for service in self.registry.all():
            self.availability.observe(service)

    def reset_window(self) -> None:
        self._window_started = time.perf_counter()
        for service in self.registry.all():
            service.metrics.reset()

    def report(self, service_name: str) -> QualityReport:
        service = self.registry.get(service_name)
        elapsed = max(time.perf_counter() - self._window_started, 1e-9)
        metrics = service.metrics
        return QualityReport(
            service=service_name,
            mean_latency_s=metrics.mean_latency_s,
            throughput_ops=metrics.invocations / elapsed,
            availability=self.availability.availability(service_name),
            failure_rate=metrics.failure_rate,
            footprint_kb=service.contract.quality.footprint_kb,
            invocations=metrics.invocations)

    def scorecard(self, layer: Optional[str] = None) -> list[QualityReport]:
        services = (self.registry.by_layer(layer) if layer
                    else self.registry.all())
        return [self.report(s.name) for s in services]
