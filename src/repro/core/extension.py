"""Flexibility by extension (§2, §3.4, Figure 5).

"The user creates the required component ... and then publishes the
desired interfaces as services in the architecture.  From this point on,
the desired functionality of the component is exposed and available for
reuse."

The manager also implements §3.4's update model: "developers can then
deploy or update new services by stopping the affected processes, instead
of having to deal with the whole system" — :meth:`ExtensionManager.update`
stops exactly one service, swaps implementations, and restarts it,
recording the downtime window so the E8 benchmark can compare it against
a whole-system restart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.events import EventBus
from repro.core.registry import ServiceRegistry
from repro.core.repository import ServiceRepository
from repro.core.service import Service, ServiceState
from repro.errors import ContractViolationError, KernelError


@dataclass
class PublishRecord:
    service: str
    layer: str
    elapsed_s: float
    interfaces: list[str] = field(default_factory=list)


@dataclass
class UpdateRecord:
    service: str
    downtime_s: float
    services_stopped: int


class ExtensionManager:
    """Publishes, updates, and retires services at run time."""

    def __init__(self, registry: ServiceRegistry,
                 repository: Optional[ServiceRepository] = None,
                 events: Optional[EventBus] = None) -> None:
        self.registry = registry
        self.repository = repository
        self.events = events or registry.events
        self.publishes: list[PublishRecord] = []
        self.updates: list[UpdateRecord] = []

    # -- publish (Figure 5) ------------------------------------------------------

    def publish(self, service: Service, kernel=None) -> PublishRecord:
        """Make a user-created component available for reuse.

        The contract is checked (every declared operation must be
        implemented), published to the repository, and the service is
        set up, started, and registered — all without touching any other
        running service (that is the point of the scenario).
        """
        started = time.perf_counter()
        for iface in service.contract.interfaces:
            for operation in iface.operations:
                if not hasattr(service, f"op_{operation.name}"):
                    raise ContractViolationError(
                        f"{service.name}: contract declares "
                        f"{operation.name!r} but the implementation lacks "
                        f"op_{operation.name}")
        if self.repository is not None:
            self.repository.publish_contract(service.contract)
        if service.state is ServiceState.CREATED:
            service.setup(kernel)
        if service.state is ServiceState.READY:
            service.start()
        self.registry.register(service)
        record = PublishRecord(
            service.name, service.layer,
            elapsed_s=time.perf_counter() - started,
            interfaces=[i.name for i in service.contract.interfaces])
        self.publishes.append(record)
        self.events.publish("extension.published",
                            {"service": service.name,
                             "interfaces": record.interfaces},
                            source="extension-manager")
        return record

    # -- update (§3.4) -------------------------------------------------------------

    def update(self, replacement: Service, kernel=None) -> UpdateRecord:
        """Swap a running service for a new implementation.

        Only the affected service stops; downtime is the stop→start window.
        """
        name = replacement.name
        if name not in self.registry:
            raise KernelError(
                f"cannot update {name!r}: not currently registered")
        old = self.registry.get(name)
        down_start = time.perf_counter()
        old.stop()
        if replacement.state is ServiceState.CREATED:
            replacement.setup(kernel)
        if replacement.state is ServiceState.READY:
            replacement.start()
        self.registry.replace(replacement)
        downtime = time.perf_counter() - down_start
        if self.repository is not None:
            self.repository.publish_contract(replacement.contract)
        record = UpdateRecord(name, downtime_s=downtime, services_stopped=1)
        self.updates.append(record)
        self.events.publish("extension.updated",
                            {"service": name, "downtime_s": downtime},
                            source="extension-manager")
        return record

    # -- retire / downsize (§2 "downsized requirements", §4 embedded) ---------------

    def retire(self, name: str, force: bool = False) -> Service:
        """Disable and remove a service.

        "Disabling services requires that policies of currently running
        services are respected and all dependencies are met" (§4): retiring
        fails if another registered service's policy depends on an
        interface only this service provides, unless ``force``.
        """
        target = self.registry.get(name)
        if not force:
            provided = {i.name for i in target.contract.interfaces}
            for other in self.registry.all():
                if other.name == name:
                    continue
                for dependency in other.contract.policy.dependencies:
                    if dependency in provided:
                        alternatives = [
                            s for s in self.registry.find(dependency)
                            if s.name != name]
                        if not alternatives:
                            raise ContractViolationError(
                                f"cannot retire {name!r}: {other.name!r} "
                                f"depends on {dependency!r} with no "
                                f"alternative provider")
        target.stop()
        self.registry.deregister(name)
        self.events.publish("extension.retired", {"service": name},
                            source="extension-manager")
        return target
