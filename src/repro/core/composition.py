"""Dynamic service composition (§3.3).

"The setup phase consists of process composition according to
architectural properties and service configuration ... Services are
composed dynamically at run time according to architectural changes and
user requirements.  If a suitable workflow is found, adaptor services are
created around the component services of the workflows to provide the
original functionality based on alternative services."

The :class:`CompositionEngine` turns a declarative *process description*
(ordered steps naming required interfaces/operations) into a viable
:class:`~repro.core.workflow.Workflow`:

1. every required interface with an available provider binds late as-is;
2. a required interface with *no* provider triggers adaptor generation
   over the available services (exactly the §3.3 sentence above);
3. if neither works, composition fails with a diagnosis.

Re-running :meth:`CompositionEngine.recompose` after architectural changes
(services failing, new ones published) yields a fresh viable workflow —
the operational-phase loop of §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.adaptor import generate_adaptor
from repro.core.registry import ServiceRegistry
from repro.core.repository import ServiceRepository
from repro.core.workflow import Step, Workflow, WorkflowEngine
from repro.errors import AdaptationError, CompositionError


@dataclass
class ProcessStep:
    """One step of a declarative process description."""

    interface: str
    operation: str
    bind_args: Callable[[dict], dict] = field(default=lambda ctx: {})
    save_as: Optional[str] = None


@dataclass
class ProcessDescription:
    """What the user wants done, independent of which services do it."""

    task: str
    steps: list[ProcessStep]
    name: Optional[str] = None


@dataclass
class CompositionResult:
    workflow: Workflow
    adaptors_created: list[str] = field(default_factory=list)
    bindings: dict[str, str] = field(default_factory=dict)  # iface -> svc


class CompositionEngine:
    """Builds viable workflows out of whatever services are deployed."""

    def __init__(self, registry: ServiceRegistry,
                 repository: Optional[ServiceRepository] = None,
                 workflow_engine: Optional[WorkflowEngine] = None) -> None:
        self.registry = registry
        self.repository = repository
        self.workflow_engine = workflow_engine
        self.compositions: list[CompositionResult] = []

    def compose(self, process: ProcessDescription,
                priority: int = 0) -> CompositionResult:
        """Setup phase: resolve every step, generating adaptors as needed,
        and (when a workflow engine is attached) register the workflow."""
        adaptors: list[str] = []
        bindings: dict[str, str] = {}
        problems: list[str] = []
        for step in process.steps:
            if step.interface in bindings:
                continue
            providers = self.registry.find(step.interface)
            if providers:
                bindings[step.interface] = providers[0].name
                continue
            adaptor_name = self._adapt_interface(step.interface)
            if adaptor_name is not None:
                adaptors.append(adaptor_name)
                bindings[step.interface] = adaptor_name
            else:
                problems.append(step.interface)
        if problems:
            raise CompositionError(
                f"cannot compose {process.task!r}: no provider or "
                f"adaptable service for interfaces {problems}")
        workflow = Workflow(
            name=process.name or f"{process.task}-composed",
            task=process.task,
            steps=[Step(s.interface, s.operation, s.bind_args, s.save_as)
                   for s in process.steps],
            priority=priority)
        if self.workflow_engine is not None:
            self.workflow_engine.register(workflow)
        result = CompositionResult(workflow, adaptors, bindings)
        self.compositions.append(result)
        return result

    def _adapt_interface(self, interface_name: str) -> Optional[str]:
        """Find the interface's spec in the repository, then try to adapt
        any available service to it."""
        spec = None
        if self.repository is not None:
            for contract in self.repository.contracts():
                candidate = contract.interface(interface_name)
                if candidate is not None:
                    spec = candidate
                    break
        if spec is None:
            return None
        for target in self.registry.all():
            if not target.available or "adaptor" in target.contract.tags:
                continue
            try:
                adaptor = generate_adaptor(spec, target, self.repository)
            except AdaptationError:
                continue
            if adaptor.name not in self.registry:
                self.registry.register(adaptor)
            return adaptor.name
        return None

    def recompose(self, process: ProcessDescription,
                  priority: int = 0) -> CompositionResult:
        """Operational phase: drop the previous registration (if any) and
        compose afresh against the current architecture."""
        if self.workflow_engine is not None:
            name = process.name or f"{process.task}-composed"
            self.workflow_engine.deregister(process.task, name)
        return self.compose(process, priority)
