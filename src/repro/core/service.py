"""Service base class and lifecycle (§3.1, §3.3).

The paper distinguishes a *setup phase* ("process composition according to
architectural properties and service configuration") and an *operational
phase* (coordinators monitor and reconfigure).  The lifecycle here mirrors
that:

    CREATED --setup()--> READY --start()--> OPERATIONAL
                                   |            | fail() / crash
                                   |            v
                                stop()       FAILED --repair()--> READY
                                   v
                                STOPPED

Services expose *properties* ("read by the component when it is
instantiated, allowing to customize its behaviour according to the current
state of the architecture" — §3.6) with change notification, and maintain
per-operation metrics the quality subsystem aggregates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

from repro.core.contract import ServiceContract
from repro.errors import ServiceError, ServiceStateError


class ServiceState(Enum):
    CREATED = "created"
    READY = "ready"
    OPERATIONAL = "operational"
    DEGRADED = "degraded"
    STOPPED = "stopped"
    FAILED = "failed"


@dataclass
class ServiceMetrics:
    """Per-service counters, aggregated by the quality subsystem."""

    invocations: int = 0
    failures: int = 0
    total_latency_s: float = 0.0
    last_invoked_at: float = 0.0

    @property
    def mean_latency_s(self) -> float:
        done = self.invocations - self.failures
        return self.total_latency_s / done if done > 0 else 0.0

    @property
    def failure_rate(self) -> float:
        return self.failures / self.invocations if self.invocations else 0.0

    def reset(self) -> None:
        self.invocations = 0
        self.failures = 0
        self.total_latency_s = 0.0


class Service:
    """Base class for every SBDMS service.

    Subclasses implement operations as ``op_<name>`` methods (keyword
    arguments only) and declare them in their contract.  Invocation flows
    through :meth:`invoke`, which enforces lifecycle state and the
    contract's policy preconditions, and records metrics.

    ``layer`` places the service in one of the paper's functional layers:
    ``storage``, ``access``, ``data``, ``extension``, or ``kernel`` for the
    coordination machinery itself.
    """

    layer = "extension"

    def __init__(self, name: str, contract: ServiceContract) -> None:
        self.name = name
        self.contract = contract
        self.state = ServiceState.CREATED
        self.metrics = ServiceMetrics()
        self._properties: dict[str, Any] = {}
        self._property_listeners: list[
            Callable[[str, str, Any, Any], None]] = []
        self._injected_fault: Optional[Exception] = None

    # -- lifecycle ---------------------------------------------------------------

    def setup(self, kernel=None) -> None:
        """Setup phase: resolve configuration; transitions to READY."""
        if self.state not in (ServiceState.CREATED, ServiceState.STOPPED,
                              ServiceState.FAILED):
            raise ServiceStateError(
                f"{self.name}: setup() in state {self.state.value}")
        self.on_setup(kernel)
        self.state = ServiceState.READY

    def start(self) -> None:
        if self.state is not ServiceState.READY:
            raise ServiceStateError(
                f"{self.name}: start() in state {self.state.value}")
        self.on_start()
        self.state = ServiceState.OPERATIONAL

    def stop(self) -> None:
        if self.state in (ServiceState.STOPPED, ServiceState.CREATED):
            return
        self.on_stop()
        self.state = ServiceState.STOPPED

    def fail(self, error: Optional[Exception] = None) -> None:
        """Mark the service failed (used by fault injection and by
        operations that crash)."""
        self.state = ServiceState.FAILED
        self._injected_fault = error

    def repair(self) -> None:
        """Bring a failed service back to READY (operator action)."""
        if self.state is not ServiceState.FAILED:
            raise ServiceStateError(
                f"{self.name}: repair() in state {self.state.value}")
        self._injected_fault = None
        self.state = ServiceState.READY

    def degrade(self) -> None:
        if self.state is ServiceState.OPERATIONAL:
            self.state = ServiceState.DEGRADED

    @property
    def available(self) -> bool:
        return self.state in (ServiceState.OPERATIONAL, ServiceState.DEGRADED)

    # -- hooks for subclasses -------------------------------------------------------

    def on_setup(self, kernel) -> None:  # noqa: B027 - intentional no-op hook
        pass

    def on_start(self) -> None:  # noqa: B027
        pass

    def on_stop(self) -> None:  # noqa: B027
        pass

    # -- properties (§3.6 architecture properties) ------------------------------------

    def get_property(self, key: str, default: Any = None) -> Any:
        return self._properties.get(key, default)

    def set_property(self, key: str, value: Any) -> None:
        old = self._properties.get(key)
        self._properties[key] = value
        for listener in list(self._property_listeners):
            listener(self.name, key, old, value)

    def on_property_change(
            self, listener: Callable[[str, str, Any, Any], None]) -> None:
        self._property_listeners.append(listener)

    def properties(self) -> dict:
        """Snapshot of service properties; subclasses extend with live
        functional figures (buffer size, workload, fragmentation ...)."""
        return dict(self._properties)

    # -- invocation -----------------------------------------------------------------

    def operations(self) -> list[str]:
        return [operation.name
                for iface in self.contract.interfaces
                for operation in iface.operations]

    def invoke(self, operation: str, **args: Any) -> Any:
        """Contract-checked entry point for every call."""
        if not self.available:
            raise ServiceError(
                f"{self.name} is {self.state.value}; cannot serve "
                f"{operation!r}")
        if self._injected_fault is not None:
            raise ServiceError(
                f"{self.name}: injected fault") from self._injected_fault
        if self.contract.find_operation(operation) is None:
            raise ServiceError(
                f"{self.name} has no operation {operation!r} "
                f"(contract offers {self.operations()})")
        self.contract.policy.check_call(operation, args)
        handler = getattr(self, f"op_{operation}", None)
        if handler is None:
            raise ServiceError(
                f"{self.name}: operation {operation!r} declared but not "
                f"implemented")
        self.metrics.invocations += 1
        self.metrics.last_invoked_at = time.monotonic()
        started = time.perf_counter()
        try:
            result = handler(**args)
        except Exception:
            self.metrics.failures += 1
            raise
        self.metrics.total_latency_s += time.perf_counter() - started
        return result

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} {self.state.value}>"


class FunctionService(Service):
    """A service built from plain callables — the integration path for
    "existing application functionality" (§1): wrap the functions, declare
    a contract, publish.

    ``handlers`` maps operation names to callables taking keyword args.
    """

    def __init__(self, name: str, contract: ServiceContract,
                 handlers: dict[str, Callable[..., Any]],
                 layer: str = "extension") -> None:
        super().__init__(name, contract)
        self.layer = layer
        declared = set()
        for iface in contract.interfaces:
            for operation in iface.operations:
                declared.add(operation.name)
        missing = declared - set(handlers)
        if missing:
            raise ServiceError(
                f"{name}: contract declares unimplemented operations "
                f"{sorted(missing)}")
        for operation_name, handler in handlers.items():
            setattr(self, f"op_{operation_name}",
                    self._bind(handler))

    @staticmethod
    def _bind(handler: Callable[..., Any]) -> Callable[..., Any]:
        def bound(**args: Any) -> Any:
            return handler(**args)

        return bound
