"""Automatic index management from statistics + observed predicates.

The advisor closes the loop the paper sketches for physical design:
ANALYZE statistics say whether an index *could* pay (enough rows, enough
distinct values for a selective probe); observed predicate frequencies
say whether it *would* pay (the column is actually filtered on).  Both
signals must agree before the advisor spends a build.

Stability is the hard part — an advisor that flaps costs more than a
bad static choice — so every action sits behind hysteresis:

- **create** requires the same ``(table, column)`` equality predicate to
  clear the sighting threshold in ``confirm`` *consecutive* windows;
- **drop** applies only to advisor-created indexes, and only after the
  index went unprobed for ``drop_after`` consecutive windows on a table
  that is still taking writes (an unused index on a read-only table is
  free);
- after any action the advisor sits out ``cooldown`` windows;
- a dropped ``(table, column)`` leaves a **scar**: the advisor never
  recreates it in this process — if the workload genuinely flipped
  back, the create evidence would also re-justify the maintenance cost
  the drop proved too high, and oscillating between those two states is
  exactly the flapping this module exists to prevent.

Actions go through the SQL front door (``CREATE INDEX`` … ``ANALYZE``)
so they are planned, locked, logged, and visible like any user DDL.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.observe import WorkloadWindow

ADVISOR_PREFIX = "adaptive_ix_"


class IndexAdvisor:
    """Auto-create/drop secondary indexes from observed windows."""

    def __init__(self, db, min_rows: int = 200, min_sightings: int = 8,
                 min_ndv: int = 4, confirm: int = 2, cooldown: int = 3,
                 drop_after: int = 6, max_indexes: int = 8) -> None:
        self.db = db
        self.min_rows = min_rows
        self.min_sightings = min_sightings
        self.min_ndv = min_ndv
        self.confirm = confirm
        self.cooldown = cooldown
        self.drop_after = drop_after
        self.max_indexes = max_indexes
        #: (table, column) -> consecutive qualifying windows.
        self._create_streaks: dict[tuple, int] = {}
        #: index name -> consecutive idle windows.
        self._idle_streaks: dict[str, int] = {}
        #: advisor-created indexes still alive: name -> (table, column).
        self.created: dict[str, tuple] = {}
        #: (table, column) pairs the advisor dropped — never recreated.
        self.scars: set[tuple] = set()
        self._cooldown_left = 0
        self.actions: list[dict] = []

    # -- evidence --------------------------------------------------------------------

    def _indexed_columns(self, table_name: str) -> set[str]:
        """Leading columns of every existing index on ``table_name``."""
        try:
            table = self.db.catalog.table(table_name)
        except Exception:  # noqa: BLE001 — table dropped mid-window
            return set()
        return {index.definition.columns[0]
                for index in table.indexes.values()}

    def _selective_enough(self, table_name: str,
                          column: str) -> Optional[str]:
        """ANALYZE-based profitability check; returns the evidence
        string when the column qualifies, None otherwise (collecting
        statistics on demand the first time a table shows up)."""
        stats = self.db.catalog.stats_for(table_name)
        if stats is None:
            try:
                self.db.execute(f"ANALYZE {table_name}")
            except Exception:  # noqa: BLE001
                return None
            stats = self.db.catalog.stats_for(table_name)
            if stats is None:
                return None
        if stats.row_count < self.min_rows:
            return None
        column_stats = stats.column(column)
        if column_stats is None or \
                column_stats.n_distinct < self.min_ndv:
            return None
        # Ask the planner's own cost model whether it would *use* the
        # index: selectivity thresholds alone can justify an index the
        # optimizer then prices above a (cached) sequential scan, and a
        # built-but-never-probed index is the starved half of a
        # create/drop flap.  Both sides must agree before a build.
        from repro.data.sql.optimizer import CostModel
        model = CostModel(buffer_pages=getattr(
            self.db.pool, "capacity", 256))
        pages = max(stats.page_count, 1)
        matching = stats.row_count / max(column_stats.n_distinct, 1)
        probe = model.index_scan(pages, stats.row_count, matching)
        scan = model.seq_scan(pages, stats.row_count)
        if probe >= scan:
            return None
        return (f"rows={stats.row_count} "
                f"ndv={column_stats.n_distinct} "
                f"cost={probe:.2f}<{scan:.2f}")

    # -- the decision step -----------------------------------------------------------

    def consider(self, window: WorkloadWindow) -> list[dict]:
        """Advance streaks with one observed window; maybe act.

        Returns the actions taken (also appended to ``self.actions``).
        At most one action per call — physical design changes are
        expensive enough to deserve a fresh window of evidence each.
        """
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            # Streaks still advance during cooldown observation-wise?
            # No: freezing them keeps "confirm consecutive windows"
            # meaningful relative to the post-action workload.
            return []
        self._advance_create_streaks(window)
        self._advance_idle_streaks(window)
        action = self._maybe_create() or self._maybe_drop(window)
        if action is not None:
            self.actions.append(action)
            self._cooldown_left = self.cooldown
            return [action]
        return []

    def _advance_create_streaks(self, window: WorkloadWindow) -> None:
        qualifying = set()
        for table_name, activity in window.tables.items():
            indexed = None   # lazily computed per table
            for (column, op), count in activity.predicates.items():
                if op != "=" or count < self.min_sightings:
                    continue
                key = (table_name, column)
                if key in self.scars:
                    continue
                if indexed is None:
                    indexed = self._indexed_columns(table_name)
                if column in indexed:
                    continue
                qualifying.add(key)
        for key in list(self._create_streaks):
            if key not in qualifying:
                del self._create_streaks[key]   # consecutive or nothing
        for key in qualifying:
            self._create_streaks[key] = \
                self._create_streaks.get(key, 0) + 1

    def _advance_idle_streaks(self, window: WorkloadWindow) -> None:
        for name, (table_name, _column) in self.created.items():
            activity = window.tables.get(table_name)
            probes = activity.index_probe_counts.get(name, 0) \
                if activity is not None else 0
            writes = activity.mutations if activity is not None else 0
            if probes == 0 and writes > 0:
                self._idle_streaks[name] = \
                    self._idle_streaks.get(name, 0) + 1
            else:
                self._idle_streaks.pop(name, None)

    def _maybe_create(self) -> Optional[dict]:
        if len(self.created) >= self.max_indexes:
            return None
        ready = [key for key, streak in self._create_streaks.items()
                 if streak >= self.confirm]
        for table_name, column in sorted(ready):
            evidence = self._selective_enough(table_name, column)
            if evidence is None:
                continue
            name = f"{ADVISOR_PREFIX}{table_name}_{column}"
            try:
                self.db.execute(
                    f"CREATE INDEX {name} ON {table_name} ({column})")
                self.db.execute(f"ANALYZE {table_name}")
            except Exception as exc:  # noqa: BLE001 — e.g. DDL race
                self._create_streaks.pop((table_name, column), None)
                return {"at": time.time(), "action": "create_index",
                        "index": name, "table": table_name,
                        "column": column, "error": str(exc)}
            self._create_streaks.pop((table_name, column), None)
            self.created[name] = (table_name, column)
            return {"at": time.time(), "action": "create_index",
                    "index": name, "table": table_name,
                    "column": column,
                    "trigger": f"{evidence} streak={self.confirm}"}
        return None

    def _maybe_drop(self, window: WorkloadWindow) -> Optional[dict]:
        for name, streak in sorted(self._idle_streaks.items(),
                                   key=lambda kv: -kv[1]):
            if streak < self.drop_after or name not in self.created:
                continue
            table_name, column = self.created[name]
            try:
                self.db.execute(f"DROP INDEX {name}")
            except Exception as exc:  # noqa: BLE001
                self._idle_streaks.pop(name, None)
                return {"at": time.time(), "action": "drop_index",
                        "index": name, "table": table_name,
                        "column": column, "error": str(exc)}
            del self.created[name]
            self._idle_streaks.pop(name, None)
            self.scars.add((table_name, column))
            return {"at": time.time(), "action": "drop_index",
                    "index": name, "table": table_name,
                    "column": column,
                    "trigger": f"idle_windows={streak} "
                               f"writes={window.tables[table_name].mutations}"}
        return None

    def stats(self) -> dict:
        return {
            "created": {name: list(key)
                        for name, key in sorted(self.created.items())},
            "scars": sorted(list(s) for s in self.scars),
            "pending": {f"{t}.{c}": streak for (t, c), streak
                        in sorted(self._create_streaks.items())},
            "cooldown_left": self._cooldown_left,
            "actions": len(self.actions),
        }
