"""The SBDMS kernel: the assembled architecture of Figure 2.

One :class:`SBDMSKernel` instance wires together every §3.1 component:
the registry (discovery), repository (schemas), event bus (notifications),
resource manager, coordinator, adaptation engine, extension manager,
workflow engine, and the shared binding/clock.  Layers are views over the
registry (each service declares its layer), matching the paper's layered
Figure 2 without hard-wiring anything.

The kernel itself is deliberately thin — services carry the behaviour.
Deployment profiles (:mod:`repro.profiles`) decide *which* services get
built into a kernel; the convenience façade ``repro.SBDMS`` builds a
kernel from a profile and adds the SQL front door.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.adaptation import AdaptationEngine
from repro.core.bindings import Binding, LocalBinding, SimClock, make_binding
from repro.core.coordinator import CoordinatorService
from repro.core.events import EventBus
from repro.core.extension import ExtensionManager
from repro.core.properties import ArchitectureProperties
from repro.core.registry import ServiceRegistry
from repro.core.repository import ServiceRepository
from repro.core.resource import ResourceManager, ResourcePool
from repro.core.selection import FirstAvailablePolicy, SelectionPolicy
from repro.core.service import Service
from repro.core.workflow import WorkflowEngine
from repro.errors import ServiceNotFoundError

LAYERS = ("storage", "access", "data", "extension", "kernel")


class SBDMSKernel:
    """The assembled service-based data management system."""

    def __init__(self, name: str = "sbdms",
                 binding: str | Binding = "local",
                 clock: Optional[SimClock] = None,
                 resources: Optional[dict[str, float]] = None,
                 selector: Optional[SelectionPolicy] = None) -> None:
        self.name = name
        self.clock = clock or SimClock()
        self.events = EventBus()
        self.registry = ServiceRegistry(self.events)
        self.repository = ServiceRepository()
        self.properties = ArchitectureProperties(self.events)
        self.binding: Binding = (
            binding if isinstance(binding, Binding)
            else make_binding(binding, self.clock))
        pool = ResourcePool(dict(resources or {"memory_kb": 1 << 20,
                                               "cpu": 100.0}))
        self.resources = ResourceManager(pool, self.events)
        self.adaptation = AdaptationEngine(self.registry, self.repository,
                                           self.events)
        self.selector = selector or FirstAvailablePolicy()
        self.workflows = WorkflowEngine(self.registry, self.binding,
                                        self.selector)
        self.extension = ExtensionManager(self.registry, self.repository,
                                          self.events)
        self.coordinator = CoordinatorService(
            f"{name}-coordinator", self.registry, self.events,
            self.resources, self.adaptation)
        self.coordinator.setup(self)
        self.coordinator.start()
        self.registry.register(self.coordinator)
        self.coordinator.manage(self.coordinator.name)

    # -- service deployment ---------------------------------------------------------

    def publish(self, service: Service, manage: bool = True):
        """Publish a service into the architecture (Figure 5's extension
        path) and optionally put it under coordinator management."""
        record = self.extension.publish(service, kernel=self)
        if manage:
            self.coordinator.manage(service.name)
        return record

    def retire(self, service_name: str, force: bool = False) -> Service:
        self.coordinator.unmanage(service_name)
        return self.extension.retire(service_name, force=force)

    def update(self, replacement: Service):
        return self.extension.update(replacement, kernel=self)

    # -- invocation front door ---------------------------------------------------------

    def call(self, interface: str, operation: str,
             heal: bool = False, **args: Any) -> Any:
        """Late-bound call: resolve a provider now, dispatch through the
        kernel binding.

        With ``heal=True`` a failed call triggers one coordinator sweep
        (detection + adaptation, §3.3's operational phase) and a single
        retry against whatever provider the healed architecture offers.
        """
        self._auto_monitor_tick()
        try:
            return self._dispatch(interface, operation, args)
        except Exception:
            if not heal:
                raise
            self.monitor_sweep()
            return self._dispatch(interface, operation, args)

    def _dispatch(self, interface: str, operation: str, args: dict) -> Any:
        candidates = self.registry.find(interface)
        if not candidates:
            raise ServiceNotFoundError(
                f"no available service provides {interface!r}")
        service = self.selector.choose(interface, candidates)
        return self.binding.call(service, operation, **args)

    # -- operational phase (§3.3) --------------------------------------------------------

    def enable_auto_monitor(self, every: int = 100) -> None:
        """Run a coordinator sweep automatically every ``every`` kernel
        calls — the deterministic stand-in for a background monitoring
        process."""
        if every < 1:
            raise ValueError("auto-monitor interval must be >= 1")
        self._auto_monitor_every = every
        self._auto_monitor_count = 0

    def disable_auto_monitor(self) -> None:
        self._auto_monitor_every = None

    def _auto_monitor_tick(self) -> None:
        every = getattr(self, "_auto_monitor_every", None)
        if every is None:
            return
        self._auto_monitor_count += 1
        if self._auto_monitor_count >= every:
            self._auto_monitor_count = 0
            self.monitor_sweep()

    def sql(self, statement: str, params: tuple = ()) -> Any:
        """Convenience: route SQL text to whatever provides ``Query``."""
        return self.call("Query", "execute", statement=statement,
                         params=params)

    # -- monitoring -----------------------------------------------------------------------

    def monitor_sweep(self) -> dict:
        return self.coordinator.invoke("monitor")

    def layer(self, layer_name: str) -> list[Service]:
        return self.registry.by_layer(layer_name)

    def snapshot(self) -> dict:
        """Architecture state: what a monitoring dashboard would show."""
        per_layer = {layer: sorted(s.name for s in self.layer(layer))
                     for layer in LAYERS}
        return {
            "kernel": self.name,
            "services": len(self.registry),
            "layers": per_layer,
            "binding": self.binding.name,
            "sim_time_s": self.clock.now,
            "resources": self.resources.snapshot(),
            "incidents": len(self.coordinator.incidents),
            "properties": self.properties.snapshot(),
        }

    def shutdown(self) -> None:
        for service in self.registry.all():
            service.stop()
