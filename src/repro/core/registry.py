"""Service registry: discovery by name, interface, or tag (§3.1).

"Service registries enable service discovery."  The registry is the
kernel's source of truth for what is deployed and reachable; coordinator
services watch it, the workflow engine late-binds through it, and the
distribution substrate gossips its entries between nodes.

Multiple services may provide the same interface — that multiplicity *is*
flexibility by selection; :meth:`ServiceRegistry.find` returns all
candidates and the selection policies rank them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.contract import Interface
from repro.core.events import EventBus
from repro.core.service import Service, ServiceState
from repro.errors import KernelError, ServiceNotFoundError


class ServiceRegistry:
    """Name → service map with interface and tag secondary indexes."""

    def __init__(self, events: Optional[EventBus] = None) -> None:
        self._services: dict[str, Service] = {}
        self.events = events or EventBus()

    # -- registration -------------------------------------------------------------

    def register(self, service: Service) -> None:
        if service.name in self._services:
            raise KernelError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        self.events.publish("registry.registered",
                            {"service": service.name,
                             "layer": service.layer},
                            source="registry")

    def deregister(self, name: str) -> Service:
        service = self._services.pop(name, None)
        if service is None:
            raise ServiceNotFoundError(f"no service {name!r} registered")
        self.events.publish("registry.deregistered", {"service": name},
                            source="registry")
        return service

    def replace(self, service: Service) -> Optional[Service]:
        """Swap in a new implementation under an existing name (used by
        flexibility-by-extension updates).  Returns the old service."""
        old = self._services.get(service.name)
        self._services[service.name] = service
        self.events.publish("registry.replaced", {"service": service.name},
                            source="registry")
        return old

    # -- lookup ---------------------------------------------------------------------

    def get(self, name: str) -> Service:
        try:
            return self._services[name]
        except KeyError:
            raise ServiceNotFoundError(
                f"no service {name!r} registered") from None

    def maybe_get(self, name: str) -> Optional[Service]:
        return self._services.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def __len__(self) -> int:
        return len(self._services)

    def all(self) -> list[Service]:
        return list(self._services.values())

    def names(self) -> list[str]:
        return sorted(self._services)

    def find(self, interface: str | Interface,
             only_available: bool = True,
             tags: Iterable[str] = ()) -> list[Service]:
        """All services providing ``interface`` (by name, or structurally
        when an :class:`Interface` object is given), optionally filtered to
        available ones and to services carrying every tag in ``tags``."""
        wanted_tags = set(tags)
        out: list[Service] = []
        for service in self._services.values():
            if only_available and not service.available:
                continue
            if wanted_tags - set(service.contract.tags):
                continue
            if isinstance(interface, Interface):
                if any(interface.is_satisfied_by(provided)
                       for provided in service.contract.interfaces):
                    out.append(service)
            elif service.contract.provides(interface):
                out.append(service)
        return out

    def find_one(self, interface: str | Interface,
                 only_available: bool = True) -> Service:
        candidates = self.find(interface, only_available)
        if not candidates:
            raise ServiceNotFoundError(
                f"no {'available ' if only_available else ''}service "
                f"provides {interface!r}")
        return candidates[0]

    def by_layer(self, layer: str) -> list[Service]:
        return [s for s in self._services.values() if s.layer == layer]

    # -- health ------------------------------------------------------------------------

    def states(self) -> dict[str, ServiceState]:
        return {name: service.state
                for name, service in self._services.items()}

    def snapshot(self) -> dict:
        """Registry content as data — this is what gossip replicates."""
        return {
            name: {
                "layer": service.layer,
                "state": service.state.value,
                "contract": service.contract.to_dict(),
            }
            for name, service in self._services.items()
        }
