"""Event/notification infrastructure for the SOA kernel.

Resource-management processes in the paper "support information about
service working states, process notifications, and manage service
configurations"; the event bus is the notification fabric they and the
coordinator services use.  Topics are plain strings with ``.`` hierarchy
and ``*`` suffix wildcards (``service.*`` matches ``service.failed``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

Handler = Callable[["Event"], None]


@dataclass(frozen=True)
class Event:
    """An immutable notification."""

    topic: str
    payload: dict = field(default_factory=dict)
    source: str = ""


class EventBus:
    """Synchronous publish/subscribe bus.

    Handlers run inline in publication order; a handler failure is recorded
    (and re-published on ``eventbus.handler_error``) but never breaks the
    publisher — monitoring must not take down the monitored.
    """

    def __init__(self) -> None:
        self._subscribers: dict[str, list[Handler]] = defaultdict(list)
        self.history: list[Event] = []
        self.max_history = 10_000
        self.errors: list[tuple[Event, Exception]] = []

    def subscribe(self, pattern: str, handler: Handler) -> Callable[[], None]:
        """Register ``handler`` for ``pattern``; returns an unsubscribe
        callable."""
        self._subscribers[pattern].append(handler)

        def unsubscribe() -> None:
            try:
                self._subscribers[pattern].remove(handler)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, topic: str, payload: dict | None = None,
                source: str = "") -> Event:
        event = Event(topic, payload or {}, source)
        self.history.append(event)
        if len(self.history) > self.max_history:
            del self.history[:len(self.history) - self.max_history]
        for pattern, handlers in list(self._subscribers.items()):
            if not self._matches(pattern, topic):
                continue
            for handler in list(handlers):
                try:
                    handler(event)
                except Exception as exc:  # noqa: BLE001 - isolation by design
                    self.errors.append((event, exc))
        return event

    @staticmethod
    def _matches(pattern: str, topic: str) -> bool:
        if pattern == topic or pattern == "*":
            return True
        if pattern.endswith(".*"):
            return topic.startswith(pattern[:-1]) or topic == pattern[:-2]
        return False

    def events_for(self, topic_prefix: str) -> list[Event]:
        return [e for e in self.history if e.topic.startswith(topic_prefix)]
