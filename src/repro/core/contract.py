"""Service contracts (§3.2 "Architectural Connectors").

A contract is "comprised of one or more service documents that describe
the service": a *description document* (interfaces, operations, data
types, semantics), a *service policy* (conditions of interaction,
dependencies, assertions to check before invocation), and a *service
quality description* (functional QoS properties the coordinators act on).

The paper asks for open formats (WSDL / WS-Policy); here the open format
is the dict produced by :meth:`ServiceContract.to_dict` — the information
content is the same, and tests round-trip it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ContractViolationError


@dataclass(frozen=True)
class Parameter:
    """One operation parameter: a name and a coarse type tag.

    Type tags are open strings (``"int"``, ``"bytes"``, ``"str"``, ``"any"``,
    ...); ``"any"`` matches everything during compatibility checks.
    """

    name: str
    type: str = "any"

    def compatible_with(self, other: "Parameter") -> bool:
        return (self.type == other.type
                or self.type == "any" or other.type == "any")


@dataclass(frozen=True)
class Operation:
    """A named operation with typed parameters and result."""

    name: str
    params: tuple[Parameter, ...] = ()
    returns: str = "any"
    semantics: str = ""  # free-text semantic description (§3.2)

    def signature_compatible(self, other: "Operation") -> bool:
        """Structural compatibility ignoring names: arity + types match."""
        if len(self.params) != len(other.params):
            return False
        return all(p.compatible_with(q)
                   for p, q in zip(self.params, other.params)) and \
            (self.returns == other.returns
             or "any" in (self.returns, other.returns))


def op(name: str, *params: str, returns: str = "any",
       semantics: str = "") -> Operation:
    """Shorthand: ``op("read", "offset:int", "length:int", returns="bytes")``."""
    parsed = []
    for spec in params:
        pname, _, ptype = spec.partition(":")
        parsed.append(Parameter(pname, ptype or "any"))
    return Operation(name, tuple(parsed), returns, semantics)


@dataclass(frozen=True)
class Interface:
    """A named set of operations — the unit of service matching."""

    name: str
    operations: tuple[Operation, ...] = ()
    version: str = "1.0"

    def operation(self, name: str) -> Optional[Operation]:
        for operation in self.operations:
            if operation.name == name:
                return operation
        return None

    def is_satisfied_by(self, other: "Interface") -> bool:
        """True when ``other`` offers every operation of this interface with
        the same name and a compatible signature."""
        for needed in self.operations:
            provided = other.operation(needed.name)
            if provided is None or \
                    not needed.signature_compatible(provided):
                return False
        return True


@dataclass
class ServicePolicy:
    """Conditions of interaction (§3.2).

    ``dependencies`` — interface names this service needs at run time;
    ``preconditions`` — named predicates over the call (operation, args)
    evaluated before every invocation;
    ``assertions`` — named predicates over the service's properties that
    must hold for the service to be considered usable;
    ``exclusive`` — if set, at most one concurrent logical client (the
    embedded profile uses it when disabling services: §4 "policies of
    currently running services are respected").
    """

    dependencies: list[str] = field(default_factory=list)
    preconditions: dict[str, Callable[[str, dict], bool]] = \
        field(default_factory=dict)
    assertions: dict[str, Callable[[dict], bool]] = field(default_factory=dict)
    exclusive: bool = False

    def check_call(self, operation: str, args: dict) -> None:
        for name, predicate in self.preconditions.items():
            if not predicate(operation, args):
                raise ContractViolationError(
                    f"precondition {name!r} failed for {operation}({args})")

    def check_properties(self, properties: dict) -> None:
        for name, predicate in self.assertions.items():
            if not predicate(properties):
                raise ContractViolationError(
                    f"assertion {name!r} does not hold")


@dataclass
class QualityDescription:
    """Functional QoS attributes (§3.2; the §4 open issue asks *which*
    qualities matter in a DBMS — we expose the four the Discussion section
    implies: latency, throughput, availability, footprint)."""

    latency_ms: Optional[float] = None      # expected per-call latency
    throughput_ops: Optional[float] = None  # sustainable ops/second
    availability: float = 1.0               # fraction of time operational
    footprint_kb: float = 0.0               # deployment footprint
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "latency_ms": self.latency_ms,
            "throughput_ops": self.throughput_ops,
            "availability": self.availability,
            "footprint_kb": self.footprint_kb,
            **self.extra,
        }


@dataclass
class ServiceContract:
    """The full contract: description + policy + quality documents."""

    service_name: str
    interfaces: tuple[Interface, ...]
    description: str = ""
    data_types: dict[str, str] = field(default_factory=dict)
    policy: ServicePolicy = field(default_factory=ServicePolicy)
    quality: QualityDescription = field(default_factory=QualityDescription)
    tags: frozenset[str] = frozenset()
    version: str = "1.0"

    def interface(self, name: str) -> Optional[Interface]:
        for iface in self.interfaces:
            if iface.name == name:
                return iface
        return None

    def provides(self, interface_name: str) -> bool:
        return self.interface(interface_name) is not None

    def find_operation(self, name: str) -> Optional[tuple[Interface, Operation]]:
        for iface in self.interfaces:
            operation = iface.operation(name)
            if operation is not None:
                return iface, operation
        return None

    # -- open-format serialisation (the WSDL stand-in) -----------------------

    def to_dict(self) -> dict:
        return {
            "service": self.service_name,
            "version": self.version,
            "description": self.description,
            "tags": sorted(self.tags),
            "data_types": dict(self.data_types),
            "interfaces": [
                {
                    "name": iface.name,
                    "version": iface.version,
                    "operations": [
                        {
                            "name": operation.name,
                            "params": [
                                {"name": p.name, "type": p.type}
                                for p in operation.params],
                            "returns": operation.returns,
                            "semantics": operation.semantics,
                        }
                        for operation in iface.operations],
                }
                for iface in self.interfaces],
            "policy": {
                "dependencies": list(self.policy.dependencies),
                "preconditions": sorted(self.policy.preconditions),
                "assertions": sorted(self.policy.assertions),
                "exclusive": self.policy.exclusive,
            },
            "quality": self.quality.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceContract":
        """Rebuild the structural parts of a contract (predicates are code
        and do not round-trip; they come back empty)."""
        interfaces = tuple(
            Interface(
                idata["name"],
                tuple(
                    Operation(
                        odata["name"],
                        tuple(Parameter(p["name"], p["type"])
                              for p in odata["params"]),
                        odata["returns"],
                        odata.get("semantics", ""))
                    for odata in idata["operations"]),
                idata.get("version", "1.0"))
            for idata in data["interfaces"])
        quality_data = dict(data.get("quality", {}))
        quality = QualityDescription(
            latency_ms=quality_data.pop("latency_ms", None),
            throughput_ops=quality_data.pop("throughput_ops", None),
            availability=quality_data.pop("availability", 1.0),
            footprint_kb=quality_data.pop("footprint_kb", 0.0),
            extra=quality_data)
        policy = ServicePolicy(
            dependencies=list(data.get("policy", {}).get("dependencies", [])),
            exclusive=data.get("policy", {}).get("exclusive", False))
        return cls(
            service_name=data["service"],
            interfaces=interfaces,
            description=data.get("description", ""),
            data_types=dict(data.get("data_types", {})),
            policy=policy,
            quality=quality,
            tags=frozenset(data.get("tags", [])),
            version=data.get("version", "1.0"))
