"""Resource management processes (§3.1).

"These services are handled by resource management processes which support
information about service working states, process notifications, and
manage service configurations."

:class:`ResourcePool` does quantitative accounting (memory, CPU shares,
battery on devices); :class:`ResourceManager` tracks per-service working
states, grants/releases allocations, and raises low-resource alerts on the
event bus — the trigger for Figure 6's "Release Resources" scenario and
the Discussion's embedded-device workload redirection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.events import EventBus
from repro.errors import ResourceExhaustedError


@dataclass
class ResourcePool:
    """A named bundle of finite resources."""

    capacity: dict[str, float]
    used: dict[str, float] = field(default_factory=dict)

    def available(self, resource: str) -> float:
        return self.capacity.get(resource, 0.0) - self.used.get(resource, 0.0)

    def utilisation(self, resource: str) -> float:
        cap = self.capacity.get(resource, 0.0)
        return self.used.get(resource, 0.0) / cap if cap else 0.0

    def allocate(self, resource: str, amount: float) -> None:
        if amount < 0:
            raise ValueError("allocation must be non-negative")
        if self.available(resource) < amount:
            raise ResourceExhaustedError(
                f"{resource}: requested {amount}, available "
                f"{self.available(resource)}")
        self.used[resource] = self.used.get(resource, 0.0) + amount

    def release(self, resource: str, amount: float) -> None:
        current = self.used.get(resource, 0.0)
        self.used[resource] = max(0.0, current - amount)


class ResourceManager:
    """Grants resources to services and raises pressure alerts.

    ``alert_threshold`` is the utilisation fraction above which a
    ``resource.low`` event is published; coordinators subscribe and start
    flexibility-by-selection reconfiguration (§3.7, Figure 6).
    """

    def __init__(self, pool: ResourcePool,
                 events: Optional[EventBus] = None,
                 alert_threshold: float = 0.85) -> None:
        self.pool = pool
        self.events = events or EventBus()
        self.alert_threshold = alert_threshold
        self._grants: dict[str, dict[str, float]] = {}
        self.alerts_raised = 0

    def grant(self, service_name: str, resource: str, amount: float) -> None:
        self.pool.allocate(resource, amount)
        grants = self._grants.setdefault(service_name, {})
        grants[resource] = grants.get(resource, 0.0) + amount
        self._maybe_alert(resource)

    def release(self, service_name: str, resource: str,
                amount: Optional[float] = None) -> float:
        """Release ``amount`` (or everything) of a service's grant.

        This is the "Release Resources" method of Figure 6 — invoked on the
        coordinator when some service needs more resources.
        """
        grants = self._grants.get(service_name, {})
        held = grants.get(resource, 0.0)
        releasing = held if amount is None else min(amount, held)
        if releasing > 0:
            self.pool.release(resource, releasing)
            grants[resource] = held - releasing
        self.events.publish(
            "resource.released",
            {"service": service_name, "resource": resource,
             "amount": releasing},
            source="resource-manager")
        return releasing

    def release_all(self, service_name: str) -> None:
        for resource in list(self._grants.get(service_name, {})):
            self.release(service_name, resource)
        self._grants.pop(service_name, None)

    def held_by(self, service_name: str) -> dict[str, float]:
        return dict(self._grants.get(service_name, {}))

    def _maybe_alert(self, resource: str) -> None:
        utilisation = self.pool.utilisation(resource)
        if utilisation >= self.alert_threshold:
            self.alerts_raised += 1
            self.events.publish(
                "resource.low",
                {"resource": resource, "utilisation": utilisation},
                source="resource-manager")

    def snapshot(self) -> dict:
        return {
            "capacity": dict(self.pool.capacity),
            "used": dict(self.pool.used),
            "grants": {k: dict(v) for k, v in self._grants.items()},
        }
