"""SOA kernel: services, contracts, registry, coordination, flexibility.

This package is the paper's primary contribution — the Service-Based Data
Management System architecture of §3 — independent of any particular
database functionality (which lives in the storage/access/data/extension
layers and is *deployed into* a kernel).
"""

from repro.core.adaptation import (
    AdaptationEngine,
    AdaptationOutcome,
    KnobAdaptationEngine,
)
from repro.core.adaptor import AdaptorService, generate_adaptor
from repro.core.advisor import ADVISOR_PREFIX, IndexAdvisor
from repro.core.bindings import (
    BINDINGS,
    Binding,
    BindingCost,
    FileBinding,
    LocalBinding,
    SimClock,
    SimulatedRmiBinding,
    SimulatedSoapBinding,
    make_binding,
)
from repro.core.composition import (
    CompositionEngine,
    CompositionResult,
    ProcessDescription,
    ProcessStep,
)
from repro.core.contract import (
    Interface,
    Operation,
    Parameter,
    QualityDescription,
    ServiceContract,
    ServicePolicy,
    op,
)
from repro.core.coordinator import CoordinatorService, Incident
from repro.core.events import Event, EventBus
from repro.core.extension import ExtensionManager, PublishRecord, UpdateRecord
from repro.core.kernel import LAYERS, SBDMSKernel
from repro.core.knobs import (
    Knob,
    KnobRegistry,
    KnobTransition,
    build_registry,
)
from repro.core.observe import (
    ClassActivity,
    TableActivity,
    WorkloadObserver,
    WorkloadWindow,
    merge_windows,
)
from repro.core.properties import ArchitectureProperties
from repro.core.quality import QualityMonitor, QualityReport
from repro.core.registry import ServiceRegistry
from repro.core.repository import (
    OperationMapping,
    ServiceRepository,
    TransformationSchema,
)
from repro.core.resource import ResourceManager, ResourcePool
from repro.core.selection import (
    BufferPolicySelection,
    ExecutionEngineSelection,
    FirstAvailablePolicy,
    KnobProposal,
    LockGranularitySelection,
    MeasuredLatencyPolicy,
    PlanCacheSizeSelection,
    QualityDrivenPolicy,
    ResourceAwarePolicy,
    RoundRobinPolicy,
    VacuumPacingSelection,
    default_knob_policies,
)
from repro.core.service import (
    FunctionService,
    Service,
    ServiceMetrics,
    ServiceState,
)
from repro.core.workflow import ExecutionTrace, Step, Workflow, WorkflowEngine

__all__ = [
    "ADVISOR_PREFIX",
    "AdaptationEngine",
    "AdaptationOutcome",
    "AdaptorService",
    "BufferPolicySelection",
    "ClassActivity",
    "ExecutionEngineSelection",
    "IndexAdvisor",
    "Knob",
    "KnobAdaptationEngine",
    "KnobProposal",
    "KnobRegistry",
    "KnobTransition",
    "LockGranularitySelection",
    "PlanCacheSizeSelection",
    "TableActivity",
    "VacuumPacingSelection",
    "WorkloadObserver",
    "WorkloadWindow",
    "build_registry",
    "default_knob_policies",
    "merge_windows",
    "generate_adaptor",
    "BINDINGS",
    "Binding",
    "BindingCost",
    "FileBinding",
    "LocalBinding",
    "SimClock",
    "SimulatedRmiBinding",
    "SimulatedSoapBinding",
    "make_binding",
    "CompositionEngine",
    "CompositionResult",
    "ProcessDescription",
    "ProcessStep",
    "Interface",
    "Operation",
    "Parameter",
    "QualityDescription",
    "ServiceContract",
    "ServicePolicy",
    "op",
    "CoordinatorService",
    "Incident",
    "Event",
    "EventBus",
    "ExtensionManager",
    "PublishRecord",
    "UpdateRecord",
    "LAYERS",
    "SBDMSKernel",
    "ArchitectureProperties",
    "QualityMonitor",
    "QualityReport",
    "ServiceRegistry",
    "OperationMapping",
    "ServiceRepository",
    "TransformationSchema",
    "ResourceManager",
    "ResourcePool",
    "FirstAvailablePolicy",
    "MeasuredLatencyPolicy",
    "QualityDrivenPolicy",
    "ResourceAwarePolicy",
    "RoundRobinPolicy",
    "FunctionService",
    "Service",
    "ServiceMetrics",
    "ServiceState",
    "ExecutionTrace",
    "Step",
    "Workflow",
    "WorkflowEngine",
]
