"""Adaptor services (§3.1, §3.6).

"Adaptor services mediate the interaction between services that have
different interfaces and protocols.  A predefined set of adapters can be
provided ... while specialized adaptors can be automatically generated or
manually created by the developer."

An :class:`AdaptorService` is itself a service: it exposes the *required*
interface and forwards each call to a *target* service through a
transformation schema.  :func:`generate_adaptor` is the automatic path
([17] in the paper): it first looks for a published transformation schema,
then falls back to structural matching (same operation names/signatures,
or unambiguous signature-compatible candidates).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.contract import (
    Interface,
    QualityDescription,
    ServiceContract,
)
from repro.core.repository import (
    OperationMapping,
    ServiceRepository,
    TransformationSchema,
)
from repro.core.service import Service
from repro.errors import AdaptationError


class AdaptorService(Service):
    """Mediates calls against ``required`` onto ``target``'s interface."""

    layer = "kernel"

    def __init__(self, name: str, required: Interface, target: Service,
                 schema: TransformationSchema) -> None:
        quality = QualityDescription(
            latency_ms=target.contract.quality.latency_ms,
            availability=target.contract.quality.availability,
            footprint_kb=target.contract.quality.footprint_kb)
        contract = ServiceContract(
            service_name=name,
            interfaces=(required,),
            description=(f"generated adaptor: {required.name} -> "
                         f"{schema.provided_interface} on {target.name}"),
            quality=quality,
            tags=frozenset({"adaptor"}))
        super().__init__(name, contract)
        self.required = required
        self.target = target
        self.schema = schema

    def invoke(self, operation: str, **args: Any) -> Any:
        # The adaptor's own contract check, then the translated forward.
        if not self.available:
            return super().invoke(operation, **args)  # raises consistently
        mapping = self.schema.operations.get(operation)
        if mapping is None:
            return super().invoke(operation, **args)  # raises: unknown op
        self.metrics.invocations += 1
        try:
            result = self.target.invoke(mapping.target,
                                        **mapping.translate_args(args))
        except Exception:
            self.metrics.failures += 1
            raise
        return mapping.translate_result(result)


# Verb synonym groups for name-relaxed matching (the semi-automated
# adaptation of the paper's [17]): two operation names are considered
# equivalent when they share a group.  Signature compatibility alone is NOT
# enough — ``greet(name:str)`` must never silently map onto
# ``drop(name:str)`` just because the shapes agree.
_SYNONYM_GROUPS = (
    {"get", "fetch", "read", "lookup", "load", "retrieve", "find"},
    {"put", "set", "store", "write", "save", "insert", "add"},
    {"delete", "remove", "drop", "erase", "discard"},
    {"allocate", "create", "new", "make"},
    {"flush", "sync", "persist", "checkpoint"},
    {"monitor", "observe", "status", "inspect", "report"},
    {"scan", "list", "enumerate", "iterate"},
    {"execute", "run", "invoke", "call", "query"},
)


def _names_equivalent(a: str, b: str) -> bool:
    if a == b:
        return True
    a_stem, b_stem = a.lower(), b.lower()
    for group in _SYNONYM_GROUPS:
        a_hit = any(part in group for part in a_stem.split("_"))
        b_hit = any(part in group for part in b_stem.split("_"))
        if a_hit and b_hit:
            return True
    return False


def _structural_schema(required: Interface,
                       provided: Interface) -> Optional[TransformationSchema]:
    """Derive a mapping by matching operation names, then signatures."""
    operations: dict[str, OperationMapping] = {}
    for needed in required.operations:
        target = provided.operation(needed.name)
        if target is not None and needed.signature_compatible(target):
            arg_names = {p.name: q.name
                         for p, q in zip(needed.params, target.params)}
            operations[needed.name] = OperationMapping(
                target=target.name, arg_names=arg_names)
            continue
        # Name differs: accept a signature-compatible operation only when
        # it is unambiguous AND the names are verb-equivalent.
        candidates = [op_ for op_ in provided.operations
                      if needed.signature_compatible(op_)
                      and _names_equivalent(needed.name, op_.name)]
        if len(candidates) != 1:
            return None
        target = candidates[0]
        arg_names = {p.name: q.name
                     for p, q in zip(needed.params, target.params)}
        operations[needed.name] = OperationMapping(
            target=target.name, arg_names=arg_names)
    return TransformationSchema(
        required_interface=required.name,
        provided_interface=provided.name,
        operations=operations,
        description="structurally derived")


def generate_adaptor(required: Interface, target: Service,
                     repository: Optional[ServiceRepository] = None,
                     name: Optional[str] = None) -> AdaptorService:
    """Build an adaptor exposing ``required`` on top of ``target``.

    Resolution order (mirroring §3.1): published transformation schema →
    structural derivation → :class:`AdaptationError`.
    """
    schema: Optional[TransformationSchema] = None
    if repository is not None:
        for provided in target.contract.interfaces:
            schema = repository.find_route(required, provided)
            if schema is not None:
                break
    if schema is None:
        for provided in target.contract.interfaces:
            schema = _structural_schema(required, provided)
            if schema is not None:
                break
    if schema is None:
        raise AdaptationError(
            f"cannot adapt {target.name!r} to interface {required.name!r}: "
            f"no transformation schema and no structural match")
    adaptor = AdaptorService(
        name or f"adaptor:{required.name}->{target.name}",
        required, target, schema)
    adaptor.setup()
    adaptor.start()
    return adaptor
