"""Flexibility by adaptation (§2, §3.6, Figure 7).

"If a service is erroneous or missing, the solution is to find a
substitute.  If no other service is available to provide the same
functionality through the same interfaces, but if there are other
components with different interfaces that can provide the original
functionality, the architecture can adapt the service interfaces to meet
the new requirements."

The engine implements that cascade for a failed service:

1. **recompose** — another available service provides the same interfaces;
   re-point the registry alias (cheap, pure selection).
2. **adapt** — a service with *different* interfaces can carry the
   functionality; generate adaptor services around it (§3.1 / [17]) and
   register them under the failed service's interfaces.
3. **give up** — record an unresolved incident; the system runs degraded.

Every outcome carries timing and step counts: these are the adaptation-
latency numbers the benchmarks report (the paper predicts "performance may
degrade ... [but] the system can continue to operate").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.adaptor import AdaptorService, generate_adaptor
from repro.core.events import EventBus
from repro.core.registry import ServiceRegistry
from repro.core.repository import ServiceRepository
from repro.errors import AdaptationError


@dataclass
class AdaptationOutcome:
    """Result of one adaptation attempt."""

    failed_service: str
    strategy: str                  # "recompose" | "adapt" | "none"
    succeeded: bool
    substitutes: dict[str, str] = field(default_factory=dict)
    adaptors_created: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    steps: int = 0
    error: Optional[str] = None

    def describe(self) -> dict:
        return {
            "failed": self.failed_service,
            "strategy": self.strategy,
            "succeeded": self.succeeded,
            "substitutes": dict(self.substitutes),
            "adaptors": list(self.adaptors_created),
            "elapsed_s": self.elapsed_s,
            "steps": self.steps,
            "error": self.error,
        }


class AdaptationEngine:
    """Finds and wires substitutes for failed services."""

    def __init__(self, registry: ServiceRegistry,
                 repository: Optional[ServiceRepository] = None,
                 events: Optional[EventBus] = None) -> None:
        self.registry = registry
        self.repository = repository
        self.events = events or registry.events
        self.outcomes: list[AdaptationOutcome] = []

    def handle_failure(self, failed_name: str) -> AdaptationOutcome:
        started = time.perf_counter()
        failed = self.registry.maybe_get(failed_name)
        outcome = AdaptationOutcome(failed_name, "none", succeeded=False)
        if failed is None:
            outcome.error = "service not in registry"
            self._finish(outcome, started)
            return outcome

        needed = list(failed.contract.interfaces)
        substitutes: dict[str, str] = {}
        adaptors: list[AdaptorService] = []
        strategy = "recompose"
        try:
            for interface in needed:
                outcome.steps += 1
                # 1. Same (named) interface elsewhere? (recomposition —
                #    name-based late binding keeps working unchanged)
                candidates = [
                    s for s in self.registry.find(interface.name)
                    if s.name != failed_name]
                if candidates:
                    substitutes[interface.name] = candidates[0].name
                    continue
                # 2. Different interface, adaptable? (adaptor generation)
                strategy = "adapt"
                adaptor = self._generate_for(interface, failed_name)
                outcome.steps += 1
                adaptors.append(adaptor)
                substitutes[interface.name] = adaptor.name
        except AdaptationError as exc:
            outcome.strategy = strategy
            outcome.error = str(exc)
            self._finish(outcome, started)
            self.events.publish("adaptation.failed",
                                outcome.describe(), source="adaptation")
            return outcome

        # Wire the adaptors into the registry so late binding finds them.
        for adaptor in adaptors:
            if adaptor.name not in self.registry:
                self.registry.register(adaptor)
                outcome.adaptors_created.append(adaptor.name)
        outcome.strategy = strategy
        outcome.substitutes = substitutes
        outcome.succeeded = True
        self._finish(outcome, started)
        self.events.publish("adaptation.succeeded",
                            outcome.describe(), source="adaptation")
        return outcome

    def _generate_for(self, interface, failed_name: str) -> AdaptorService:
        """Try every available service as an adaptation target."""
        errors: list[str] = []
        for target in self.registry.all():
            if target.name == failed_name or not target.available:
                continue
            if "adaptor" in target.contract.tags:
                continue
            try:
                return generate_adaptor(interface, target, self.repository)
            except AdaptationError as exc:
                errors.append(f"{target.name}: {exc}")
        raise AdaptationError(
            f"no service adaptable to {interface.name!r} "
            f"({len(errors)} candidates rejected)")

    def _finish(self, outcome: AdaptationOutcome, started: float) -> None:
        outcome.elapsed_s = time.perf_counter() - started
        self.outcomes.append(outcome)

    # -- metrics -------------------------------------------------------------------

    def stats(self) -> dict:
        succeeded = [o for o in self.outcomes if o.succeeded]
        return {
            "attempts": len(self.outcomes),
            "succeeded": len(succeeded),
            "recompositions": sum(1 for o in succeeded
                                  if o.strategy == "recompose"),
            "adaptations": sum(1 for o in succeeded
                               if o.strategy == "adapt"),
            "mean_latency_s": (
                sum(o.elapsed_s for o in succeeded) / len(succeeded)
                if succeeded else 0.0),
        }
