"""Flexibility by adaptation (§2, §3.6, Figure 7).

"If a service is erroneous or missing, the solution is to find a
substitute.  If no other service is available to provide the same
functionality through the same interfaces, but if there are other
components with different interfaces that can provide the original
functionality, the architecture can adapt the service interfaces to meet
the new requirements."

The engine implements that cascade for a failed service:

1. **recompose** — another available service provides the same interfaces;
   re-point the registry alias (cheap, pure selection).
2. **adapt** — a service with *different* interfaces can carry the
   functionality; generate adaptor services around it (§3.1 / [17]) and
   register them under the failed service's interfaces.
3. **give up** — record an unresolved incident; the system runs degraded.

Every outcome carries timing and step counts: these are the adaptation-
latency numbers the benchmarks report (the paper predicts "performance may
degrade ... [but] the system can continue to operate").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.adaptor import AdaptorService, generate_adaptor
from repro.core.events import EventBus
from repro.core.registry import ServiceRegistry
from repro.core.repository import ServiceRepository
from repro.errors import AdaptationError


@dataclass
class AdaptationOutcome:
    """Result of one adaptation attempt."""

    failed_service: str
    strategy: str                  # "recompose" | "adapt" | "none"
    succeeded: bool
    substitutes: dict[str, str] = field(default_factory=dict)
    adaptors_created: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    steps: int = 0
    error: Optional[str] = None

    def describe(self) -> dict:
        return {
            "failed": self.failed_service,
            "strategy": self.strategy,
            "succeeded": self.succeeded,
            "substitutes": dict(self.substitutes),
            "adaptors": list(self.adaptors_created),
            "elapsed_s": self.elapsed_s,
            "steps": self.steps,
            "error": self.error,
        }


class AdaptationEngine:
    """Finds and wires substitutes for failed services."""

    def __init__(self, registry: ServiceRegistry,
                 repository: Optional[ServiceRepository] = None,
                 events: Optional[EventBus] = None) -> None:
        self.registry = registry
        self.repository = repository
        self.events = events or registry.events
        self.outcomes: list[AdaptationOutcome] = []

    def handle_failure(self, failed_name: str) -> AdaptationOutcome:
        started = time.perf_counter()
        failed = self.registry.maybe_get(failed_name)
        outcome = AdaptationOutcome(failed_name, "none", succeeded=False)
        if failed is None:
            outcome.error = "service not in registry"
            self._finish(outcome, started)
            return outcome

        needed = list(failed.contract.interfaces)
        substitutes: dict[str, str] = {}
        adaptors: list[AdaptorService] = []
        strategy = "recompose"
        try:
            for interface in needed:
                outcome.steps += 1
                # 1. Same (named) interface elsewhere? (recomposition —
                #    name-based late binding keeps working unchanged)
                candidates = [
                    s for s in self.registry.find(interface.name)
                    if s.name != failed_name]
                if candidates:
                    substitutes[interface.name] = candidates[0].name
                    continue
                # 2. Different interface, adaptable? (adaptor generation)
                strategy = "adapt"
                adaptor = self._generate_for(interface, failed_name)
                outcome.steps += 1
                adaptors.append(adaptor)
                substitutes[interface.name] = adaptor.name
        except AdaptationError as exc:
            outcome.strategy = strategy
            outcome.error = str(exc)
            self._finish(outcome, started)
            self.events.publish("adaptation.failed",
                                outcome.describe(), source="adaptation")
            return outcome

        # Wire the adaptors into the registry so late binding finds them.
        for adaptor in adaptors:
            if adaptor.name not in self.registry:
                self.registry.register(adaptor)
                outcome.adaptors_created.append(adaptor.name)
        outcome.strategy = strategy
        outcome.substitutes = substitutes
        outcome.succeeded = True
        self._finish(outcome, started)
        self.events.publish("adaptation.succeeded",
                            outcome.describe(), source="adaptation")
        return outcome

    def _generate_for(self, interface, failed_name: str) -> AdaptorService:
        """Try every available service as an adaptation target."""
        errors: list[str] = []
        for target in self.registry.all():
            if target.name == failed_name or not target.available:
                continue
            if "adaptor" in target.contract.tags:
                continue
            try:
                return generate_adaptor(interface, target, self.repository)
            except AdaptationError as exc:
                errors.append(f"{target.name}: {exc}")
        raise AdaptationError(
            f"no service adaptable to {interface.name!r} "
            f"({len(errors)} candidates rejected)")

    def _finish(self, outcome: AdaptationOutcome, started: float) -> None:
        outcome.elapsed_s = time.perf_counter() - started
        self.outcomes.append(outcome)

    # -- metrics -------------------------------------------------------------------

    def stats(self) -> dict:
        succeeded = [o for o in self.outcomes if o.succeeded]
        return {
            "attempts": len(self.outcomes),
            "succeeded": len(succeeded),
            "recompositions": sum(1 for o in succeeded
                                  if o.strategy == "recompose"),
            "adaptations": sum(1 for o in succeeded
                               if o.strategy == "adapt"),
            "mean_latency_s": (
                sum(o.elapsed_s for o in succeeded) / len(succeeded)
                if succeeded else 0.0),
        }


# -- the live engine's knob controller ---------------------------------------------
#
# AdaptationEngine above handles *failure* (substitute a broken
# service); KnobAdaptationEngine handles *fitness* — the same §2
# observe-decide-act loop, pointed at the real DBMS knobs instead of
# service wiring.  It is the paper's self-tuning story made live: the
# observer supplies workload windows, knob-selection policies turn them
# into proposals, and the engine applies them through the typed
# registry — with hysteresis and cooldowns so a decision is a trend
# judgement, not a reaction to one noisy window.


from collections import deque                              # noqa: E402

from repro.core.advisor import IndexAdvisor                # noqa: E402
from repro.core.knobs import KnobRegistry                  # noqa: E402
from repro.core.observe import WorkloadObserver            # noqa: E402
from repro.core.selection import default_knob_policies     # noqa: E402


class KnobAdaptationEngine:
    """Observe → decide → act over a database's knob registry.

    ``step()`` takes one observer sample, collects proposals from every
    policy, and applies those that survive hysteresis: a proposal must
    recur (same knob, same value) in ``confirm`` consecutive steps, and
    a knob that just changed sits out ``cooldown`` steps before it may
    change again.  The index advisor runs on the same windows with its
    own (stricter) hysteresis.

    Every applied change lands in a bounded decision ``log`` with the
    timestamp, the old → new values, the policy, and the trigger
    metrics that justified it — the ``stats()["adaptation"]`` surface.
    """

    def __init__(self, db, observer: WorkloadObserver,
                 registry: KnobRegistry, policies=None,
                 advisor: IndexAdvisor = None, confirm: int = 2,
                 cooldown: int = 4, log_limit: int = 256) -> None:
        self.db = db
        self.observer = observer
        self.registry = registry
        self.policies = list(policies) if policies is not None \
            else default_knob_policies()
        self.advisor = advisor
        self.confirm = confirm
        self.cooldown = cooldown
        #: knob -> (proposed value, consecutive steps proposed).
        self._streaks: dict[str, tuple] = {}
        #: knob -> cooldown steps remaining.
        self._cooldowns: dict[str, int] = {}
        self.log: deque[dict] = deque(maxlen=log_limit)
        self.steps = 0
        self.changes = 0

    def step(self) -> list[dict]:
        """One control-loop iteration; returns the decisions applied."""
        self.steps += 1
        window = self.observer.sample()
        for knob in list(self._cooldowns):
            self._cooldowns[knob] -= 1
            if self._cooldowns[knob] <= 0:
                del self._cooldowns[knob]

        proposals = {}
        for policy in self.policies:
            for proposal in policy.propose(window):
                # First policy to claim a knob this step wins; the
                # standard set never overlaps.
                proposals.setdefault(proposal.knob,
                                     (proposal, policy.name))

        applied: list[dict] = []
        for knob_name in list(self._streaks):
            if knob_name not in proposals:
                del self._streaks[knob_name]    # consecutive or nothing
        for knob_name, (proposal, policy_name) in proposals.items():
            held = self._streaks.get(knob_name)
            streak = held[1] + 1 if held is not None \
                and held[0] == proposal.value else 1
            self._streaks[knob_name] = (proposal.value, streak)
            if streak < self.confirm or knob_name in self._cooldowns:
                continue
            if knob_name not in self.registry:
                continue
            try:
                transition = self.registry.set(
                    knob_name, proposal.value, reason=proposal.trigger,
                    source="adaptive")
            except Exception as exc:  # noqa: BLE001 — log, keep looping
                self.log.append({
                    "at": time.time(), "knob": knob_name,
                    "value": proposal.value, "policy": policy_name,
                    "trigger": proposal.trigger, "error": str(exc)})
                del self._streaks[knob_name]
                continue
            del self._streaks[knob_name]
            if transition is None:      # already holds the value
                continue
            self._cooldowns[knob_name] = self.cooldown
            decision = {"at": transition.at, "knob": knob_name,
                        "old": transition.old, "new": transition.new,
                        "policy": policy_name,
                        "trigger": proposal.trigger}
            self.log.append(decision)
            applied.append(decision)
            self.changes += 1

        if self.advisor is not None:
            for action in self.advisor.consider(window):
                decision = dict(action)
                decision.setdefault("policy", "index-advisor")
                decision["knob"] = f"index:{decision.get('index', '?')}"
                self.log.append(decision)
                applied.append(decision)
                self.changes += 1
        return applied

    def stats(self) -> dict:
        entry = {
            "steps": self.steps,
            "changes": self.changes,
            "windows": len(self.observer.windows),
            "log": list(self.log),
            "knobs": self.registry.snapshot(),
            "pending": {knob: {"value": value, "streak": streak}
                        for knob, (value, streak)
                        in self._streaks.items()},
            "cooldowns": dict(self._cooldowns),
        }
        if self.advisor is not None:
            entry["advisor"] = self.advisor.stats()
        if self.observer.windows:
            entry["last_window"] = self.observer.windows[-1].describe()
        return entry
