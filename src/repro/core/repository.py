"""Service repository: contracts and transformational schemas (§3.1).

"Service repositories handle service schemas and transformational
schemas, while service registries enable service discovery."  The
repository is the *design-time* store: published contracts (even for
services not currently deployed) and the transformation schemas the
adaptor generator uses to mediate between mismatched interfaces.

A :class:`TransformationSchema` says how calls against a *required*
interface map onto a *provided* interface: operation renames, argument
renames, and optional per-argument converter functions.  The predefined
set (§3.1: "a predefined set of adapters can be provided") ships with the
kernel; users add their own, and the generator composes the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.contract import Interface, ServiceContract
from repro.errors import KernelError


@dataclass
class OperationMapping:
    """Maps one required operation onto a provided one."""

    target: str                               # provided operation name
    arg_names: dict[str, str] = field(default_factory=dict)
    arg_converters: dict[str, Callable[[Any], Any]] = \
        field(default_factory=dict)
    result_converter: Optional[Callable[[Any], Any]] = None
    constants: dict[str, Any] = field(default_factory=dict)

    def translate_args(self, args: dict) -> dict:
        out = dict(self.constants)
        for name, value in args.items():
            if name in self.arg_converters:
                value = self.arg_converters[name](value)
            out[self.arg_names.get(name, name)] = value
        return out

    def translate_result(self, result: Any) -> Any:
        if self.result_converter is not None:
            return self.result_converter(result)
        return result


@dataclass
class TransformationSchema:
    """Full mapping between a required and a provided interface."""

    required_interface: str
    provided_interface: str
    operations: dict[str, OperationMapping] = field(default_factory=dict)
    description: str = ""

    def covers(self, required: Interface) -> bool:
        return all(operation.name in self.operations
                   for operation in required.operations)


class ServiceRepository:
    """Design-time store of contracts and transformation schemas."""

    def __init__(self) -> None:
        self._contracts: dict[str, ServiceContract] = {}
        self._transformations: list[TransformationSchema] = []

    # -- contracts ------------------------------------------------------------

    def publish_contract(self, contract: ServiceContract) -> None:
        self._contracts[contract.service_name] = contract

    def contract(self, service_name: str) -> ServiceContract:
        try:
            return self._contracts[service_name]
        except KeyError:
            raise KernelError(
                f"no contract published for {service_name!r}") from None

    def contracts(self) -> list[ServiceContract]:
        return list(self._contracts.values())

    def contracts_providing(self, interface_name: str) -> list[ServiceContract]:
        return [c for c in self._contracts.values()
                if c.provides(interface_name)]

    # -- transformation schemas ---------------------------------------------------

    def add_transformation(self, schema: TransformationSchema) -> None:
        self._transformations.append(schema)

    def transformations_for(
            self, required_interface: str,
            provided_interface: Optional[str] = None
    ) -> list[TransformationSchema]:
        return [t for t in self._transformations
                if t.required_interface == required_interface
                and (provided_interface is None
                     or t.provided_interface == provided_interface)]

    def find_route(self, required: Interface,
                   provided: Interface) -> Optional[TransformationSchema]:
        """A schema translating ``required`` onto ``provided``, if known."""
        for schema in self._transformations:
            if (schema.required_interface == required.name
                    and schema.provided_interface == provided.name
                    and schema.covers(required)):
                return schema
        return None

    def stats(self) -> dict:
        return {"contracts": len(self._contracts),
                "transformations": len(self._transformations)}
