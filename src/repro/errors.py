"""Exception hierarchy for the SBDMS reproduction.

Every error raised by the library derives from :class:`SBDMSError` so that
callers can catch library failures with a single ``except`` clause.  The
sub-hierarchies mirror the architectural layers of the paper: storage,
access, data, the SOA kernel, SCA assembly, and the distribution substrate.
"""

from __future__ import annotations


class SBDMSError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StorageError(SBDMSError):
    """Base class for storage-layer failures."""


class DiskError(StorageError):
    """A simulated block device failed (bad block, out of range, closed)."""


class DiskFullError(DiskError):
    """The block device has no capacity left for an allocation."""


class ChecksumError(DiskError):
    """A page failed checksum verification on read."""


class BufferPoolError(StorageError):
    """Buffer pool misuse or exhaustion."""


class PageNotPinnedError(BufferPoolError):
    """An unpin was attempted for a page that is not pinned."""


class BufferPoolFullError(BufferPoolError):
    """All frames are pinned; no victim page can be evicted."""


class FileManagerError(StorageError):
    """A database file operation failed (unknown file, duplicate name)."""


class WALError(StorageError):
    """Write-ahead log corruption or protocol violation."""


class WALFullError(WALError):
    """The write-ahead log device is out of space.

    Raised on the append/flush path when the underlying device reports
    ``ENOSPC`` (:class:`DiskFullError`).  Transactions translate it into a
    clean abort plus backpressure (checkpoint + WAL truncation) so the
    engine stays usable while the log is full.
    """


# ---------------------------------------------------------------------------
# Access layer
# ---------------------------------------------------------------------------


class AccessError(SBDMSError):
    """Base class for access-layer failures."""


class RecordCodecError(AccessError):
    """A record could not be encoded or decoded against its schema."""


class PageLayoutError(AccessError):
    """Slotted-page structural violation (bad slot, overflow)."""


class IndexError_(AccessError):
    """Index structural failure (duplicate key where unique, missing key)."""


class DuplicateKeyError(IndexError_):
    """Insertion of a key that already exists in a unique index."""


class KeyNotFoundError(IndexError_):
    """Lookup or deletion of a key that is absent."""


# ---------------------------------------------------------------------------
# Data layer
# ---------------------------------------------------------------------------


class DataError(SBDMSError):
    """Base class for logical data-layer failures."""


class CatalogError(DataError):
    """Catalog inconsistency (unknown or duplicate table/index/view)."""


class SchemaError(DataError):
    """Schema violation (unknown column, arity or type mismatch)."""


class SQLError(DataError):
    """Base class for SQL front-end failures."""


class SQLSyntaxError(SQLError):
    """The statement could not be tokenized or parsed."""


class SQLPlanError(SQLError):
    """The statement parsed but could not be planned (unknown names, types)."""


class TransactionError(DataError):
    """Transaction protocol violation (use after commit, deadlock, ...)."""


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within its timeout."""


class SerializationError(TransactionError):
    """Concurrency conflict under snapshot-based isolation.

    Two sources: the *first-updater-wins* rule (a transaction tried to
    update or delete a row whose latest version was created — or whose
    deletion was committed — by a transaction concurrent with its
    snapshot), and under ``isolation="serializable"`` an *SSI pivot
    abort* (the transaction sits at the apex of two consecutive
    rw-antidependency edges — a dangerous structure that could close a
    non-serializable cycle; see :mod:`repro.data.ssi`).  Either way,
    retrying the whole transaction on a fresh snapshot is the standard
    client response.
    """


class CommitOutcomeUnknownError(TransactionError):
    """A commit record was written but could not be forced to disk.

    The transaction's COMMIT record sits in the WAL buffer: a later
    successful flush (or group-commit leader) makes the commit durable,
    while a crash before that point rolls it back during recovery.  The
    client must treat the transaction outcome as indeterminate until it
    re-reads the data.
    """


class InjectedCrashError(SBDMSError):
    """A crash point armed by the fault-injection framework fired.

    Raised from inside storage/access/data-layer operations to simulate a
    process crash at that exact point: everything already durable stays,
    everything buffered in memory is lost when the test reopens the
    database over the same devices.
    """


# ---------------------------------------------------------------------------
# SOA kernel
# ---------------------------------------------------------------------------


class KernelError(SBDMSError):
    """Base class for SOA-kernel failures."""


class ServiceError(KernelError):
    """A service failed while executing an operation."""


class ServiceStateError(KernelError):
    """An operation was attempted in an illegal lifecycle state."""


class ServiceNotFoundError(KernelError):
    """Registry lookup failed to locate a matching service."""


class ContractViolationError(KernelError):
    """A call or composition violates a service contract or policy."""


class IncompatibleInterfaceError(KernelError):
    """Two interfaces cannot be wired together, even through adaptation."""


class AdaptationError(KernelError):
    """No adaptor could be generated to mediate between two contracts."""


class CompositionError(KernelError):
    """Workflow composition failed (no viable workflow, cycle, ...)."""


class ResourceExhaustedError(KernelError):
    """A resource pool cannot satisfy an allocation request."""


# ---------------------------------------------------------------------------
# SCA assembly
# ---------------------------------------------------------------------------


class SCAError(SBDMSError):
    """Base class for SCA component-model failures."""


class WiringError(SCAError):
    """A reference could not be wired to a matching service."""


class AssemblyError(SCAError):
    """An assembly descriptor is malformed or inconsistent."""


# ---------------------------------------------------------------------------
# Extensions
# ---------------------------------------------------------------------------


class ExtensionError(SBDMSError):
    """Base class for extension-service failures."""


class XMLParseError(ExtensionError):
    """The XML subset parser rejected a document."""


class XPathError(ExtensionError):
    """A path query is malformed or unsupported."""


class StreamError(ExtensionError):
    """Stream-service misuse (unknown stream, bad window spec)."""


class ProcedureError(ExtensionError):
    """Stored-procedure registration or invocation failure."""


class ReplicationError(ExtensionError):
    """Replication protocol failure (diverged replica, unknown peer)."""


# ---------------------------------------------------------------------------
# Distribution substrate
# ---------------------------------------------------------------------------


class DistributionError(SBDMSError):
    """Base class for simulated-distribution failures."""


class NetworkError(DistributionError):
    """A simulated message could not be delivered (partition, loss)."""


class NodeError(DistributionError):
    """Device failure or resource exhaustion on a simulated node."""
