"""Profile definitions and the system builder.

A :class:`DeploymentProfile` lists the services to deploy; ``build_system``
turns one into a running kernel + substrate.  Downsizing (§2: "the
architecture should be able to adapt to downsized requirements as well")
is just choosing a smaller profile — or calling ``kernel.retire`` later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.kernel import SBDMSKernel
from repro.data.database import Database
from repro.data.services import (
    AccessService,
    DataService,
    MonitoringService,
    QueryService,
)
from repro.storage.services import StorageService, StorageStack


@dataclass(frozen=True)
class DeploymentProfile:
    """Which services a deployment carries."""

    name: str
    storage: bool = True
    access: bool = True
    data: bool = True
    query: bool = True
    monitoring: bool = True
    extensions: tuple[str, ...] = ()   # extension service names to enable
    buffer_capacity: int = 256
    description: str = ""


FULL = DeploymentProfile(
    name="full",
    extensions=("xml", "streaming", "procedures", "replication"),
    buffer_capacity=512,
    description="fully-fledged DBMS bundled with extensions (§4)")

EMBEDDED = DeploymentProfile(
    name="embedded",
    monitoring=False,
    extensions=(),
    buffer_capacity=16,
    description="small footprint DBMS for embedded environments (§4)")

QUERY_ONLY = DeploymentProfile(
    name="query-only",
    monitoring=False,
    extensions=(),
    buffer_capacity=64,
    description="storage+access+query, no extension layer")

STREAMING = DeploymentProfile(
    name="streaming",
    extensions=("streaming",),
    buffer_capacity=128,
    description="stream-focused deployment")

PROFILES = {p.name: p for p in (FULL, EMBEDDED, QUERY_ONLY, STREAMING)}


@dataclass
class BuiltSystem:
    """A kernel plus the substrate objects behind its services."""

    kernel: SBDMSKernel
    database: Database
    profile: DeploymentProfile
    services: list[str] = field(default_factory=list)

    def footprint(self) -> dict:
        """E2's figure: deployed services and advertised footprint."""
        total_kb = sum(
            service.contract.quality.footprint_kb
            for service in self.kernel.registry.all())
        return {
            "profile": self.profile.name,
            "services": len(self.kernel.registry),
            "footprint_kb": total_kb,
            "buffer_pages": self.database.pool.capacity,
        }


def build_system(profile: DeploymentProfile | str = FULL,
                 binding: str = "local",
                 database: Optional[Database] = None,
                 kernel_name: Optional[str] = None) -> BuiltSystem:
    """Deploy ``profile`` into a fresh kernel."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    kernel = SBDMSKernel(name=kernel_name or f"sbdms-{profile.name}",
                         binding=binding)
    database = database or Database(buffer_capacity=profile.buffer_capacity)
    deployed: list[str] = []

    if profile.storage:
        stack = StorageStack.__new__(StorageStack)
        stack.device = database.device
        stack.disk = database.files.disk
        stack.files = database.files
        stack.wal = database.wal
        stack.pool = database.pool
        stack.pages = database.pages
        service = StorageService(stack)
        kernel.publish(service)
        deployed.append(service.name)
    if profile.access:
        service = AccessService(database)
        kernel.publish(service)
        deployed.append(service.name)
    if profile.data:
        service = DataService(database)
        kernel.publish(service)
        deployed.append(service.name)
    if profile.query:
        service = QueryService(database)
        kernel.publish(service)
        deployed.append(service.name)
    if profile.monitoring:
        service = MonitoringService(database)
        kernel.publish(service)
        deployed.append(service.name)
    for extension_name in profile.extensions:
        service = _build_extension(extension_name, database)
        kernel.publish(service)
        deployed.append(service.name)
    kernel.properties.set("profile", profile.name, source="builder")
    return BuiltSystem(kernel, database, profile, deployed)


def _build_extension(name: str, database: Database):
    from repro.extensions import (
        ProcedureService,
        ReplicationService,
        StreamService,
        XMLService,
    )

    factories = {
        "xml": lambda: XMLService(database),
        "streaming": lambda: StreamService(),
        "procedures": lambda: ProcedureService(database),
        "replication": lambda: ReplicationService(database),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(f"unknown extension {name!r}; "
                         f"known: {sorted(factories)}") from None
