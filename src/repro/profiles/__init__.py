"""Deployment profiles: tailor-made data management (§1, §2, §4).

"Ranging from fully-fledged extended DBMS to small footprint DBMS running
in embedded system environments" — a profile decides which services get
deployed into a kernel.  Profiles drive the E2 footprint experiment and
the architecture-style comparison of Figure 1.
"""

from repro.profiles.build import (
    PROFILES,
    DeploymentProfile,
    build_system,
    EMBEDDED,
    FULL,
    QUERY_ONLY,
    STREAMING,
)
from repro.profiles.styles import (
    ARCHITECTURE_STYLES,
    ArchitectureStyle,
    style_report,
)

__all__ = [
    "PROFILES",
    "DeploymentProfile",
    "build_system",
    "EMBEDDED",
    "FULL",
    "QUERY_ONLY",
    "STREAMING",
    "ARCHITECTURE_STYLES",
    "ArchitectureStyle",
    "style_report",
]
