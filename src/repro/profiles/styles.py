"""Architecture styles for the Figure 1 comparison.

Figure 1 charts the evolution: monolithic -> extensible -> component ->
adaptable (service-based).  To make that figure *measurable*, each style
builds the same engine with a different coupling discipline, and
``style_report`` scores the flexibility actions the paper cares about:
can you swap a part at run time, how many components does an update stop,
can the system survive a component failure.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArchitectureStyle:
    """Flexibility scorecard entries for one architecture style.

    The boolean/step figures are *structural* facts about the coupling
    discipline, asserted by the F1 benchmark against live behaviour of the
    corresponding build (see benchmarks/bench_f1_architecture_styles.py).
    """

    name: str
    era: int                         # position on Figure 1's arrow
    runtime_swap: bool               # replace a part without full restart
    services_stopped_per_update: str  # "all" or "1"
    survives_component_failure: bool
    integrates_external_functionality: bool
    downsizable: bool

    def flexibility_score(self) -> int:
        """Count of flexibility capabilities (0-4)."""
        return sum([
            self.runtime_swap,
            self.survives_component_failure,
            self.integrates_external_functionality,
            self.downsizable,
        ])


MONOLITHIC = ArchitectureStyle(
    name="monolithic", era=1,
    runtime_swap=False,
    services_stopped_per_update="all",
    survives_component_failure=False,
    integrates_external_functionality=False,
    downsizable=False)

EXTENSIBLE = ArchitectureStyle(
    name="extensible", era=2,
    runtime_swap=False,
    services_stopped_per_update="all",
    survives_component_failure=False,
    integrates_external_functionality=True,   # top-level front ends only
    downsizable=False)

COMPONENT = ArchitectureStyle(
    name="component", era=3,
    runtime_swap=True,
    services_stopped_per_update="all",        # dependent components too
    survives_component_failure=False,
    integrates_external_functionality=True,
    downsizable=True)

ADAPTABLE = ArchitectureStyle(
    name="adaptable (SBDMS)", era=4,
    runtime_swap=True,
    services_stopped_per_update="1",
    survives_component_failure=True,
    integrates_external_functionality=True,
    downsizable=True)

ARCHITECTURE_STYLES = (MONOLITHIC, EXTENSIBLE, COMPONENT, ADAPTABLE)


def style_report() -> list[dict]:
    """Figure 1 as a table: style, era, capabilities, score."""
    return [
        {
            "style": style.name,
            "era": style.era,
            "runtime_swap": style.runtime_swap,
            "update_stops": style.services_stopped_per_update,
            "survives_failure": style.survives_component_failure,
            "integrates_external": style.integrates_external_functionality,
            "downsizable": style.downsizable,
            "flexibility_score": style.flexibility_score(),
        }
        for style in ARCHITECTURE_STYLES
    ]
