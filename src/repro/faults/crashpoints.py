"""Crash points: die mid-transaction at any layer, deterministically.

Storage, access, and data-layer code calls :func:`maybe_crash` at the
interesting moments of a transaction's life (buffer eviction, heap
mutation, index maintenance, commit flush, mid-WAL-flush).  Tests arm a
site with :func:`arm` (optionally skipping the first ``after`` hits) and
run a workload; when the armed hit is reached an
:class:`~repro.errors.InjectedCrashError` propagates out of the engine.
The test then *abandons* the crashed instance and reopens a fresh
``Database`` over the same devices — exactly what a process crash looks
like: durable state only.

The module is dependency-free (it must be importable from the bottom of
the storage layer without cycles) and every call is a dict lookup when
nothing is armed.

Known sites (grep for ``maybe_crash`` to verify the list):

- ``buffer.writeback``   — after WAL flush, before the page reaches disk
- ``wal.flush.mid``      — between WAL data-block writes and the tail
                           header update (a torn log flush)
- ``heap.insert`` / ``heap.update`` / ``heap.delete`` — after the page
                           mutation + log append, before unpin
- ``table.index``        — after the heap change, before index maintenance
- ``txn.commit.logged``  — COMMIT record appended, not yet flushed
- ``txn.commit.flushed`` — COMMIT record durable, before lock release
"""

from __future__ import annotations

import threading
from typing import Optional

_mutex = threading.Lock()
_armed: dict[str, int] = {}      # site -> remaining hits before firing
_hits: dict[str, int] = {}       # site -> total times the site was reached
_halted = False                  # a crash fired: the "process" is dead
_active = False                  # anything armed/halted? (lock-free gate)


def arm(site: str, after: int = 0) -> None:
    """Arm ``site`` to crash on its ``after + 1``-th hit."""
    global _active
    with _mutex:
        _armed[site] = after
        _active = True


def disarm(site: Optional[str] = None) -> None:
    """Disarm one site (or every site when ``None``)."""
    global _active
    with _mutex:
        if site is None:
            _armed.clear()
        else:
            _armed.pop(site, None)
        _active = bool(_armed) or _halted


def reset() -> None:
    """Disarm everything, clear hit counters, and revive the process
    (tests call this before reopening the database — the fresh instance
    models a new process with no injector)."""
    global _halted, _active
    with _mutex:
        _armed.clear()
        _hits.clear()
        _halted = False
        _active = False


def halted() -> bool:
    with _mutex:
        return _halted


def hits(site: str) -> int:
    """How often ``site`` was reached while the injector was active
    (hits are only counted between :func:`arm` and :func:`reset`) —
    lets tests randomise ``after`` within the observed range."""
    with _mutex:
        return _hits.get(site, 0)


def maybe_crash(site: str) -> None:
    """Crash-point hook: raises when ``site`` is armed and due.

    When nothing is armed this is a single unlocked boolean check —
    the hook sits on hot paths (heap mutations, buffer write-back, WAL
    flush, commit) and must not serialize them in normal operation.

    Once any site has fired, *every* subsequent hit raises too: a crashed
    process executes nothing, so cleanup handlers (rollback, commit,
    flush) that catch the first exception must not be able to keep
    mutating durable state.  The WAL's torn-flush design makes any write
    that slipped out before a site was reached invisible on reopen.
    """
    global _halted
    if not _active:
        return
    with _mutex:
        _hits[site] = _hits.get(site, 0) + 1
        if _halted:
            pass  # fall through and raise again
        elif site not in _armed:
            return
        elif _armed[site] > 0:
            _armed[site] -= 1
            return
        else:
            del _armed[site]
            _halted = True
    from repro.errors import InjectedCrashError

    raise InjectedCrashError(f"injected crash at {site}")
