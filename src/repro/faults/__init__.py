"""Fault injection framework for the adaptation experiments."""

from repro.faults.injection import (
    CampaignReport,
    FaultAction,
    FaultCampaign,
    FlakyFault,
    SlowdownFault,
    crash_service,
    disk_fault,
)

__all__ = [
    "CampaignReport",
    "FaultAction",
    "FaultCampaign",
    "FlakyFault",
    "SlowdownFault",
    "crash_service",
    "disk_fault",
]
