"""Fault injection framework: service faults for the adaptation
experiments and crash points for the transaction/recovery tests."""

from repro.faults import crashpoints
from repro.faults.injection import (
    CampaignReport,
    FaultAction,
    FaultCampaign,
    FlakyFault,
    SlowdownFault,
    crash_service,
    disk_fault,
)

__all__ = [
    "CampaignReport",
    "FaultAction",
    "FaultCampaign",
    "FlakyFault",
    "SlowdownFault",
    "crash_service",
    "crashpoints",
    "disk_fault",
]
