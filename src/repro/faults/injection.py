"""Fault injection for the adaptation experiments (Figure 7).

"The main issue here is to make the architecture aware of missing or
erroneous services" — which presupposes services *become* erroneous.
This module makes that controllable and deterministic:

- :func:`crash_service` — hard failure (state → FAILED);
- :class:`SlowdownFault` — wraps operations with added latency
  ("reduced performance that no longer meets the quality expected");
- :class:`FlakyFault` — probabilistic per-call failures (seeded);
- :func:`disk_fault` — bad blocks / dead device at the storage substrate;
- :class:`FaultCampaign` — a deterministic schedule of fault actions
  replayed against a kernel, step by step, with monitor sweeps between.

Device-level injection is now expressed through the richer
:mod:`repro.storage.faultdev` vocabulary (:class:`FaultSchedule` /
:class:`FaultyDevice`); :func:`disk_fault` remains as the campaign-level
shorthand, delegating to the shared schedule machinery.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.kernel import SBDMSKernel
from repro.core.service import Service
from repro.errors import ServiceError
from repro.storage.disk import BlockDevice
from repro.storage.faultdev import FaultSchedule, install_hook


def crash_service(service: Service,
                  reason: str = "injected crash") -> None:
    service.fail(ServiceError(reason))


class SlowdownFault:
    """Wraps every operation of a service with extra latency."""

    def __init__(self, service: Service, delay_s: float) -> None:
        self.service = service
        self.delay_s = delay_s
        self._original_invoke = service.invoke
        self.active = False

    def inject(self) -> None:
        if self.active:
            return

        def slow_invoke(operation, **args):
            time.sleep(self.delay_s)
            return self._original_invoke(operation, **args)

        self.service.invoke = slow_invoke  # type: ignore[method-assign]
        self.service.degrade()
        self.active = True

    def remove(self) -> None:
        if self.active:
            self.service.invoke = self._original_invoke  # type: ignore
            self.active = False


class FlakyFault:
    """Fails a fraction of calls, deterministically via a seeded RNG."""

    def __init__(self, service: Service, failure_rate: float,
                 seed: int = 7) -> None:
        self.service = service
        self.failure_rate = failure_rate
        self.rng = random.Random(seed)
        self._original_invoke = service.invoke
        self.active = False
        self.injected_failures = 0

    def inject(self) -> None:
        if self.active:
            return

        def flaky_invoke(operation, **args):
            if self.rng.random() < self.failure_rate:
                self.injected_failures += 1
                self.service.metrics.invocations += 1
                self.service.metrics.failures += 1
                raise ServiceError(
                    f"{self.service.name}: injected flaky failure")
            return self._original_invoke(operation, **args)

        self.service.invoke = flaky_invoke  # type: ignore[method-assign]
        self.active = True

    def remove(self) -> None:
        if self.active:
            self.service.invoke = self._original_invoke  # type: ignore
            self.active = False


def disk_fault(device: BlockDevice, bad_blocks: Optional[set[int]] = None,
               fail_all: bool = False) -> Callable[[], None]:
    """Install a device fault; returns a remover callable.

    Thin front over :mod:`repro.storage.faultdev`: a dead device is
    ``FaultSchedule.dead()``, bad blocks are per-block always-on EIO
    specs — the same specs a :class:`FaultyDevice` torture run uses.
    """
    if fail_all:
        schedule = FaultSchedule.dead()
    else:
        schedule = FaultSchedule.bad_blocks(bad_blocks or ())
    return install_hook(device, schedule)


@dataclass
class FaultAction:
    """One scheduled fault: fires at ``step``."""

    step: int
    kind: str                      # crash | repair | slow | restore
    service: str
    delay_s: float = 0.0


@dataclass
class CampaignReport:
    steps_run: int = 0
    actions_fired: list[str] = field(default_factory=list)
    sweeps: list[dict] = field(default_factory=list)
    operations_attempted: int = 0
    operations_succeeded: int = 0

    @property
    def availability(self) -> float:
        if self.operations_attempted == 0:
            return 1.0
        return self.operations_succeeded / self.operations_attempted


class FaultCampaign:
    """Deterministic schedule of faults against a kernel under load.

    Each step: fire due fault actions, run ``probe`` (one unit of client
    work; exceptions count as failed operations), then run a coordinator
    monitor sweep so detection/adaptation latency is part of the measured
    behaviour.
    """

    def __init__(self, kernel: SBDMSKernel,
                 actions: list[FaultAction]) -> None:
        self.kernel = kernel
        self.actions = sorted(actions, key=lambda a: a.step)
        self._slowdowns: dict[str, SlowdownFault] = {}

    def run(self, steps: int,
            probe: Callable[[int], None]) -> CampaignReport:
        report = CampaignReport()
        pending = list(self.actions)
        for step in range(steps):
            while pending and pending[0].step <= step:
                action = pending.pop(0)
                self._fire(action)
                report.actions_fired.append(
                    f"{action.step}:{action.kind}:{action.service}")
            report.operations_attempted += 1
            try:
                probe(step)
                report.operations_succeeded += 1
            except Exception:  # noqa: BLE001 - failures are the datum
                pass
            report.sweeps.append(self.kernel.monitor_sweep())
            report.steps_run += 1
        return report

    def _fire(self, action: FaultAction) -> None:
        service = self.kernel.registry.maybe_get(action.service)
        if service is None:
            return
        if action.kind == "crash":
            crash_service(service)
        elif action.kind == "repair":
            if not service.available:
                service.repair()
                service.start()
        elif action.kind == "slow":
            fault = SlowdownFault(service, action.delay_s)
            fault.inject()
            self._slowdowns[action.service] = fault
        elif action.kind == "restore":
            fault = self._slowdowns.pop(action.service, None)
            if fault is not None:
                fault.remove()
                if service.state.value == "degraded":
                    service.state = type(service.state).OPERATIONAL
        else:
            raise ValueError(f"unknown fault kind {action.kind!r}")
