"""SBDMS — a Service-Based Data Management System.

Reproduction of Subasu, Ziegler, Dittrich, Gall: *Architectural Concerns
for Flexible Data Management* (EDBT 2008 SETMDM workshop).

The public façade is :class:`SBDMS`: build a system from a deployment
profile, speak SQL to it, publish user services into it, and watch the
coordinator keep it alive.  Every layer is also importable directly —
``repro.core`` (the SOA kernel), ``repro.sca`` (the component model),
``repro.storage`` / ``repro.access`` / ``repro.data`` (the engine), and
``repro.extensions`` / ``repro.distribution`` (the Discussion scenarios).
"""

from typing import Any, Optional, Sequence

from repro.core.kernel import SBDMSKernel
from repro.core.service import Service
from repro.data.database import Database, ResultSet
from repro.profiles import PROFILES, DeploymentProfile, build_system

__version__ = "1.0.0"


class SBDMS:
    """Convenience façade over a profile-built kernel.

    >>> system = SBDMS(profile="full")
    >>> system.sql("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    >>> system.sql("INSERT INTO t VALUES (1, 'ada')")
    >>> system.sql("SELECT name FROM t")["rows"]
    [('ada',)]
    """

    def __init__(self, profile: str | DeploymentProfile = "full",
                 binding: str = "local",
                 database: Optional[Database] = None) -> None:
        built = build_system(profile, binding=binding, database=database)
        self.kernel: SBDMSKernel = built.kernel
        self.database: Database = built.database
        self.profile = built.profile
        self._built = built

    # -- data management -------------------------------------------------------

    def sql(self, statement: str, params: Sequence[Any] = ()) -> Any:
        """Run SQL through the Query service (late-bound via the kernel)."""
        return self.kernel.sql(statement, tuple(params))

    def query(self, statement: str,
              params: Sequence[Any] = ()) -> list[tuple]:
        return self.sql(statement, params)["rows"]

    # -- architecture operations ---------------------------------------------------

    def publish(self, service: Service):
        """Flexibility by extension: add a user service (Figure 5)."""
        return self.kernel.publish(service)

    def retire(self, service_name: str, force: bool = False) -> Service:
        """Downsizing (§2): remove a service, respecting policies."""
        return self.kernel.retire(service_name, force=force)

    def update(self, replacement: Service):
        """§3.4: update one service by stopping only the affected process."""
        return self.kernel.update(replacement)

    def monitor(self) -> dict:
        return self.kernel.monitor_sweep()

    @property
    def registry(self):
        return self.kernel.registry

    @property
    def coordinator(self):
        return self.kernel.coordinator

    @property
    def repository(self):
        return self.kernel.repository

    def snapshot(self) -> dict:
        snap = self.kernel.snapshot()
        snap["footprint"] = self._built.footprint()
        return snap

    def checkpoint(self) -> None:
        self.database.checkpoint()

    def shutdown(self) -> None:
        self.database.checkpoint()
        self.kernel.shutdown()


__all__ = [
    "SBDMS",
    "SBDMSKernel",
    "Service",
    "Database",
    "ResultSet",
    "PROFILES",
    "DeploymentProfile",
    "build_system",
    "__version__",
]
