"""SCA component model (§3.6, Figures 3–4).

Components expose services, depend through references, and are configured
by properties; composites contain components recursively and promote
services/references to their boundary.  The SBDMS kernel includes these
principles "into our SBDMS architecture" — :mod:`repro.profiles` uses
assemblies to build the storage stack hierarchically.
"""

from repro.sca.assembly import dump_assembly, load_assembly
from repro.sca.component import (
    Component,
    ComponentService,
    Reference,
    ServiceHandle,
)
from repro.sca.composite import Composite, CompositeServiceHandle, Wire

__all__ = [
    "dump_assembly",
    "load_assembly",
    "Component",
    "ComponentService",
    "Reference",
    "ServiceHandle",
    "Composite",
    "CompositeServiceHandle",
    "Wire",
]
