"""SCA components (§3.6, Figure 3).

"The most atomic structure of the SCA is the component ... Every component
exposes functionality in form of one or more services ... Components can
rely on other services provided by other components.  To describe this
dependency, components use references.  Beside services and references, a
component can define one or more properties.  Properties are read by the
component when it is instantiated, allowing to customize its behaviour
according to the current state of the architecture."

A :class:`Component` wraps an *implementation* (any Python object, or an
SBDMS :class:`~repro.core.service.Service`, or a nested composite — SCA
composites are themselves valid implementations).  Exposed services are
named views onto implementation callables; references are late-bound
callable slots wired by the enclosing composite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SCAError, WiringError


@dataclass
class ComponentService:
    """A named service exposed by a component.

    ``operations`` maps operation names to attribute names on the
    implementation (identity mapping unless renamed).
    """

    name: str
    operations: dict[str, str]

    @classmethod
    def of(cls, name: str, *operation_names: str,
           **renames: str) -> "ComponentService":
        ops = {op_name: op_name for op_name in operation_names}
        ops.update(renames)
        return cls(name, ops)


@dataclass
class Reference:
    """A dependency slot: wired to another component's service."""

    name: str
    interface: str = ""          # documentation; matching is by wiring
    required: bool = True
    target: Optional["ServiceHandle"] = None

    @property
    def wired(self) -> bool:
        return self.target is not None


@dataclass
class ServiceHandle:
    """A callable handle onto one exposed component service."""

    component: "Component"
    service: ComponentService

    def call(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        return self.component.call_service(self.service.name, operation,
                                           *args, **kwargs)

    def __call__(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        return self.call(operation, *args, **kwargs)


class Component:
    """An SCA component: implementation + services + references + properties.

    ``implementation_factory`` is called at :meth:`instantiate` time with
    ``(properties, references)`` so the implementation can "customize its
    behaviour according to the current state of the architecture" — exactly
    Figure 3's property semantics.  Alternatively pass ``implementation=``
    for a pre-built object.
    """

    def __init__(self, name: str,
                 implementation: Any = None,
                 implementation_factory: Optional[
                     Callable[[dict, dict], Any]] = None,
                 services: Optional[list[ComponentService]] = None,
                 references: Optional[list[Reference]] = None,
                 properties: Optional[dict[str, Any]] = None) -> None:
        if implementation is None and implementation_factory is None:
            raise SCAError(f"component {name!r} needs an implementation")
        self.name = name
        self._implementation = implementation
        self._factory = implementation_factory
        self.services: dict[str, ComponentService] = {
            s.name: s for s in (services or [])}
        self.references: dict[str, Reference] = {
            r.name: r for r in (references or [])}
        self.properties: dict[str, Any] = dict(properties or {})
        self._instantiated = implementation is not None

    # -- lifecycle -----------------------------------------------------------

    def set_property(self, key: str, value: Any) -> None:
        if self._instantiated and self._factory is not None:
            raise SCAError(
                f"{self.name}: properties are read at instantiation; "
                f"re-instantiate to change them")
        self.properties[key] = value

    def wire(self, reference_name: str, handle: ServiceHandle) -> None:
        try:
            self.references[reference_name].target = handle
        except KeyError:
            raise WiringError(
                f"{self.name} has no reference {reference_name!r}") from None

    def instantiate(self) -> None:
        """Create the implementation, feeding it properties and wired
        references."""
        if self._instantiated:
            return
        missing = [r.name for r in self.references.values()
                   if r.required and not r.wired]
        if missing:
            raise WiringError(
                f"{self.name}: unwired required references {missing}")
        refs = {name: ref.target for name, ref in self.references.items()}
        self._implementation = self._factory(dict(self.properties), refs)
        self._instantiated = True

    @property
    def implementation(self) -> Any:
        if not self._instantiated:
            raise SCAError(f"{self.name} is not instantiated")
        return self._implementation

    # -- service invocation --------------------------------------------------------

    def expose(self, service: ComponentService) -> None:
        self.services[service.name] = service

    def handle(self, service_name: str) -> ServiceHandle:
        try:
            return ServiceHandle(self, self.services[service_name])
        except KeyError:
            raise SCAError(
                f"{self.name} exposes no service {service_name!r} "
                f"(has {sorted(self.services)})") from None

    def call_service(self, service_name: str, operation: str,
                     *args: Any, **kwargs: Any) -> Any:
        service = self.services.get(service_name)
        if service is None:
            raise SCAError(
                f"{self.name} exposes no service {service_name!r}")
        impl = self.implementation
        # Composite implementations recurse (Figure 4: recursive
        # containment): route through the inner promoted service, whose
        # operation set the composite resolves itself.
        if hasattr(impl, "call_promoted"):
            inner = self.properties.get("promoted_map", {}).get(
                service_name, service_name)
            return impl.call_promoted(inner, operation, *args, **kwargs)
        attr = service.operations.get(operation)
        if attr is None:
            raise SCAError(
                f"service {service_name!r} of {self.name} has no operation "
                f"{operation!r}")
        method = getattr(impl, attr, None)
        if method is None:
            raise SCAError(
                f"{self.name}: implementation lacks {attr!r}")
        return method(*args, **kwargs)

    def reference_call(self, reference_name: str, operation: str,
                       *args: Any, **kwargs: Any) -> Any:
        """Convenience used by implementations to call through a wire."""
        ref = self.references.get(reference_name)
        if ref is None or ref.target is None:
            raise WiringError(
                f"{self.name}: reference {reference_name!r} is not wired")
        return ref.target.call(operation, *args, **kwargs)

    def __repr__(self) -> str:
        return (f"<Component {self.name!r} services={sorted(self.services)} "
                f"references={sorted(self.references)}>")
