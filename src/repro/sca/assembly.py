"""Assembly descriptors: the SCDL analogue (§3.6).

SCA describes assemblies in SCDL (XML).  The open format here is a plain
dict (JSON-shaped); :func:`load_assembly` turns a descriptor into a wired
:class:`~repro.sca.composite.Composite`, looking implementations up in a
factory registry supplied by the caller.

Descriptor shape::

    {
      "name": "storage",
      "components": [
        {"name": "disk", "implementation": "memory-disk",
         "properties": {"block_size": 4096},
         "services": [{"name": "Disk", "operations": ["read", "write"]}],
         "references": []},
        ...
      ],
      "wires": [
        {"source": "buffer", "reference": "disk",
         "target": "disk", "service": "Disk"}
      ],
      "promote": {
        "services": [{"component": "buffer", "service": "Buffer"}],
        "references": []
      }
    }
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import AssemblyError
from repro.sca.component import Component, ComponentService, Reference
from repro.sca.composite import Composite

ImplementationFactory = Callable[[dict, dict], Any]


def load_assembly(descriptor: dict,
                  factories: dict[str, ImplementationFactory]) -> Composite:
    """Build and wire a composite from a descriptor.

    ``factories`` maps implementation names to ``(properties, references) ->
    object`` callables.  The returned composite is wired but not yet
    instantiated — callers may still adjust properties, then call
    :meth:`Composite.instantiate`.
    """
    try:
        composite = Composite(descriptor["name"])
        for cdesc in descriptor.get("components", []):
            impl_name = cdesc["implementation"]
            factory = factories.get(impl_name)
            if factory is None:
                raise AssemblyError(
                    f"no implementation factory for {impl_name!r} "
                    f"(known: {sorted(factories)})")
            services = [
                ComponentService(sdesc["name"],
                                 {op_: op_ for op_ in sdesc["operations"]})
                for sdesc in cdesc.get("services", [])]
            references = [
                Reference(rdesc["name"],
                          rdesc.get("interface", ""),
                          rdesc.get("required", True))
                for rdesc in cdesc.get("references", [])]
            composite.add(Component(
                cdesc["name"],
                implementation_factory=factory,
                services=services,
                references=references,
                properties=dict(cdesc.get("properties", {}))))
        for wdesc in descriptor.get("wires", []):
            composite.wire(wdesc["source"], wdesc["reference"],
                           wdesc["target"], wdesc["service"])
        promote = descriptor.get("promote", {})
        for pdesc in promote.get("services", []):
            composite.promote_service(pdesc["component"], pdesc["service"],
                                      pdesc.get("as"))
        for pdesc in promote.get("references", []):
            composite.promote_reference(pdesc["component"],
                                        pdesc["reference"],
                                        pdesc.get("as"))
        return composite
    except KeyError as exc:
        raise AssemblyError(f"descriptor missing key {exc}") from None


def dump_assembly(composite: Composite) -> dict:
    """Best-effort inverse of :func:`load_assembly` (implementations are
    code and serialise by name only)."""
    return composite.describe()
