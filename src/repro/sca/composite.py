"""SCA composites (§3.6, Figure 4).

"Components can be combined in larger structures forming composites ...
Both components and composites can be recursively contained."  A composite
contains components (or other composites via component wrappers), wires
references to services, and *promotes* selected inner services and
references to its own boundary, which is what makes recursion work:
a composite is a valid component implementation.

"SCA organises the architecture in a hierarchically way, from coarse
grained to fine grained components.  This way of organizing the
architecture makes it more manageable and comprehensible."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import SCAError, WiringError
from repro.sca.component import Component, ServiceHandle


@dataclass(frozen=True)
class Wire:
    """source component's reference -> target component's service."""

    source: str
    reference: str
    target: str
    service: str


class Composite:
    """A named assembly of components with wiring and promotion."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.components: dict[str, Component] = {}
        self.wires: list[Wire] = []
        # promoted name -> (component name, service name)
        self.promoted_services: dict[str, tuple[str, str]] = {}
        # promoted reference -> list of (component name, reference name)
        self.promoted_references: dict[str, list[tuple[str, str]]] = {}

    # -- construction ---------------------------------------------------------

    def add(self, component: Component) -> Component:
        if component.name in self.components:
            raise SCAError(
                f"{self.name} already contains {component.name!r}")
        self.components[component.name] = component
        return component

    def add_composite(self, inner: "Composite",
                      services: Optional[dict[str, str]] = None) -> Component:
        """Contain another composite (Figure 4's recursion): wrap it in a
        component whose exposed services are the inner composite's promoted
        services (all of them by default, or the given rename map)."""
        from repro.sca.component import ComponentService

        exposed = services or {n: n for n in inner.promoted_services}
        wrapper = Component(
            name=inner.name,
            implementation=inner,
            services=[ComponentService(outer, {}) for outer in exposed])
        # Operation routing for composite implementations goes through
        # call_promoted; the wrapper only needs the outer->inner name map.
        wrapper.properties["promoted_map"] = dict(exposed)
        return self.add(wrapper)

    def component(self, name: str) -> Component:
        try:
            return self.components[name]
        except KeyError:
            raise SCAError(
                f"{self.name} contains no component {name!r}") from None

    def wire(self, source: str, reference: str, target: str,
             service: str) -> None:
        """Connect ``source.reference`` to ``target.service``."""
        source_component = self.component(source)
        target_component = self.component(target)
        handle = target_component.handle(service)
        source_component.wire(reference, handle)
        self.wires.append(Wire(source, reference, target, service))

    def promote_service(self, component: str, service: str,
                        as_name: Optional[str] = None) -> None:
        self.component(component).handle(service)  # validates existence
        self.promoted_services[as_name or service] = (component, service)

    def promote_reference(self, component: str, reference: str,
                          as_name: Optional[str] = None) -> None:
        comp = self.component(component)
        if reference not in comp.references:
            raise WiringError(
                f"{component} has no reference {reference!r}")
        self.promoted_references.setdefault(
            as_name or reference, []).append((component, reference))

    # -- lifecycle ----------------------------------------------------------------

    def instantiate(self) -> None:
        """Instantiate all contained components (dependency order is the
        caller's concern; factories receive wired handles lazily, so plain
        insertion order works for acyclic assemblies)."""
        for component in self.components.values():
            impl = component._implementation
            if isinstance(impl, Composite):
                impl.instantiate()
                component._instantiated = True
            else:
                component.instantiate()

    def wire_promoted(self, promoted_name: str, handle: ServiceHandle) -> None:
        """Wire a promoted reference from outside the composite."""
        targets = self.promoted_references.get(promoted_name)
        if not targets:
            raise WiringError(
                f"{self.name} promotes no reference {promoted_name!r}")
        for component_name, reference_name in targets:
            self.component(component_name).wire(reference_name, handle)

    # -- invocation (promoted boundary) ------------------------------------------------

    def call_promoted(self, service_name: str, operation: str,
                      *args: Any, **kwargs: Any) -> Any:
        mapping = self.promoted_services.get(service_name)
        if mapping is None:
            raise SCAError(
                f"{self.name} promotes no service {service_name!r} "
                f"(has {sorted(self.promoted_services)})")
        component_name, inner_service = mapping
        return self.component(component_name).call_service(
            inner_service, operation, *args, **kwargs)

    def handle(self, promoted_name: str) -> "CompositeServiceHandle":
        if promoted_name not in self.promoted_services:
            raise SCAError(
                f"{self.name} promotes no service {promoted_name!r}")
        return CompositeServiceHandle(self, promoted_name)

    # -- introspection ------------------------------------------------------------------

    def depth(self) -> int:
        """Maximum containment depth (a flat composite has depth 1)."""
        deepest = 0
        for component in self.components.values():
            impl = component._implementation
            if isinstance(impl, Composite):
                deepest = max(deepest, impl.depth())
        return deepest + 1

    def describe(self) -> dict:
        return {
            "name": self.name,
            "components": {
                name: {
                    "services": sorted(c.services),
                    "references": sorted(c.references),
                    "nested": (c._implementation.describe()
                               if isinstance(c._implementation, Composite)
                               else None),
                }
                for name, c in self.components.items()},
            "wires": [
                f"{w.source}.{w.reference} -> {w.target}.{w.service}"
                for w in self.wires],
            "promoted_services": {
                outer: f"{comp}.{svc}"
                for outer, (comp, svc) in self.promoted_services.items()},
            "promoted_references": {
                outer: [f"{c}.{r}" for c, r in targets]
                for outer, targets in self.promoted_references.items()},
        }


class CompositeServiceHandle:
    """Callable handle onto a composite's promoted service — duck-compatible
    with :class:`~repro.sca.component.ServiceHandle` so wires can cross
    composite boundaries."""

    def __init__(self, composite: Composite, promoted_name: str) -> None:
        self.composite = composite
        self.promoted_name = promoted_name

    def call(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        return self.composite.call_promoted(self.promoted_name, operation,
                                            *args, **kwargs)

    def __call__(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        return self.call(operation, *args, **kwargs)
