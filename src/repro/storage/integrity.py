"""Integrity bookkeeping and transient-fault retry policy.

Two small pieces shared by the containment layer:

* :func:`retry_io` — bounded retry with exponential backoff for
  *transient* device errors.  :class:`~repro.errors.DiskFullError` is
  never retried (space does not reappear on its own) and
  :class:`~repro.errors.InjectedCrashError` is not a ``DiskError`` so
  crash-point injection is never swallowed here.

* :class:`QuarantineRegistry` — the set of pages known to be corrupt.
  A persistent :class:`~repro.errors.ChecksumError` quarantines the page
  instead of failing its table forever: sequential scans skip
  quarantined pages (degraded reads), ``Database.stats()["integrity"]``
  exposes per-table gauges, and the scrubber / recovery repair pages and
  clear their entries.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterable, Optional, Set, Tuple, TypeVar

from repro.errors import DiskError, DiskFullError

T = TypeVar("T")

#: Attempts made for a transiently failing device operation.
RETRY_ATTEMPTS = 3
#: Base backoff in seconds; attempt ``k`` sleeps ``BACKOFF_BASE * 2**k``.
BACKOFF_BASE = 0.001


def retry_io(operation: Callable[[], T], *,
             attempts: int = RETRY_ATTEMPTS,
             backoff: float = BACKOFF_BASE,
             retry_checksum: bool = False) -> T:
    """Run ``operation``, retrying transient :class:`DiskError` failures.

    ``DiskFullError`` propagates immediately (retry cannot create space).
    ``ChecksumError`` is a ``DiskError`` subclass but only retried when
    ``retry_checksum`` is set — a re-read can heal transient read-path
    corruption, while a deliberate verification pass must see it.
    The final failure propagates unchanged.
    """
    from repro.errors import ChecksumError

    last: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            return operation()
        except DiskFullError:
            raise
        except ChecksumError:
            if not retry_checksum:
                raise
            if attempt + 1 >= attempts:
                raise
        except DiskError:
            if attempt + 1 >= attempts:
                raise
        if backoff:
            time.sleep(backoff * (2 ** attempt))
    raise AssertionError("unreachable")  # pragma: no cover


class QuarantineRegistry:
    """Thread-safe registry of pages that failed checksum verification."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pages: Set[Tuple[int, int]] = set()
        self.detected = 0
        self.cleared = 0

    def quarantine(self, file_id: int, page_no: int) -> bool:
        """Record a corrupt page; returns True if newly quarantined."""
        with self._lock:
            key = (file_id, page_no)
            if key in self._pages:
                return False
            self._pages.add(key)
            self.detected += 1
            return True

    def clear(self, file_id: int, page_no: int) -> bool:
        with self._lock:
            try:
                self._pages.remove((file_id, page_no))
            except KeyError:
                return False
            self.cleared += 1
            return True

    def is_quarantined(self, file_id: int, page_no: int) -> bool:
        with self._lock:
            return (file_id, page_no) in self._pages

    def for_file(self, file_id: int) -> Tuple[int, ...]:
        """Page numbers quarantined within one file, sorted."""
        with self._lock:
            return tuple(sorted(p for f, p in self._pages if f == file_id))

    def pages(self) -> Tuple[Tuple[int, int], ...]:
        with self._lock:
            return tuple(sorted(self._pages))

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            per_file: Dict[int, int] = {}
            for file_id, _ in self._pages:
                per_file[file_id] = per_file.get(file_id, 0) + 1
            return {
                "quarantined_pages": len(self._pages),
                "detected": self.detected,
                "cleared": self.cleared,
                "by_file": per_file,
            }
