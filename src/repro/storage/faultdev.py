"""Deterministic I/O fault injection at the block-device boundary.

The paper's thesis is an architecture that stays useful when services
become "missing or erroneous".  :class:`FaultyDevice` makes the storage
substrate erroneous on demand: it decorates any :class:`BlockDevice` and
injects seeded, replayable faults scheduled by *operation count*, so a
failing torture-test seed reproduces the exact same fault sequence every
run.

Fault taxonomy (``FaultSpec.kind``):

``eio``
    The operation raises :class:`~repro.errors.DiskError` and has no
    effect — a transient or persistent medium error.
``enospc``
    A write raises :class:`~repro.errors.DiskFullError` — the device is
    out of space.
``torn``
    A write persists only a prefix of the new data (the suffix keeps the
    block's previous contents — sector-atomicity model) and then raises
    :class:`~repro.errors.DiskError`.  The page CRC catches the tear on
    the next read.
``fsync_lie``
    A flush *acknowledges* without making anything durable: writes since
    the previous honest flush are still lost if the device crashes.
``bitrot``
    A read returns data with one seeded bit flipped.  With
    ``persist=True`` the corruption is also written back, modelling
    latent sector rot instead of a transient bus error.

Durability model: the device keeps a *shadow* of every block's content
as of the last honest flush.  :meth:`FaultyDevice.crash` rolls the inner
device back to that shadow — exactly the data an fsync-respecting medium
would guarantee — so crash tests can distinguish "acknowledged" from
"durable".  ``durable_write_ops`` records the write-operation count at
the last honest flush; a writer that saw its flush return *and* whose
writes happened at or before that mark can assert its data survives.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import DiskError, DiskFullError
from repro.storage.disk import BlockDevice

FAULT_KINDS = ("eio", "enospc", "torn", "fsync_lie", "bitrot")

_OPS = ("read", "write", "flush", "any")


@dataclass
class FaultSpec:
    """One scheduled fault.

    ``op`` selects which operation stream the fault counts against
    (``"read"``, ``"write"``, ``"flush"``, or ``"any"``); ``at`` is the
    0-based operation index within that stream at which the fault fires
    (``None`` = fire on every matching operation, optionally narrowed by
    ``block``).  ``count`` fires the fault for that many consecutive
    matching operations, modelling transient faults that heal after a
    retry or persistent ones that never do.
    """

    op: str
    kind: str
    at: Optional[int] = None
    count: int = 1
    block: Optional[int] = None
    persist: bool = False
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown fault op {self.op!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches(self, op: str, block_no: int, op_index: int,
                any_index: int) -> bool:
        if self.op not in (op, "any"):
            return False
        if self.block is not None and self.block != block_no:
            return False
        if self.at is None:
            return True
        index = any_index if self.op == "any" else op_index
        return self.at <= index < self.at + self.count

    def spent(self) -> bool:
        return self.at is not None and self.fired >= self.count


class FaultSchedule:
    """A seeded, replayable set of :class:`FaultSpec` entries.

    The schedule owns the RNG used for bit-rot placement and torn-write
    cut points, so the same seed always corrupts the same bit of the
    same block.  ``injected`` counts faults actually delivered.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (),
                 seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.rng = random.Random(seed)
        self.seed = seed
        self.injected = 0
        self.injected_by_kind: Dict[str, int] = {k: 0 for k in FAULT_KINDS}

    def add(self, spec: FaultSpec) -> "FaultSchedule":
        self.specs.append(spec)
        return self

    def clear(self) -> None:
        self.specs.clear()

    def pick(self, op: str, block_no: int, op_index: int,
             any_index: int) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.spent():
                continue
            if spec.matches(op, block_no, op_index, any_index):
                spec.fired += 1
                self.injected += 1
                self.injected_by_kind[spec.kind] += 1
                return spec
        return None

    # -- canned schedules ---------------------------------------------------

    @classmethod
    def dead(cls) -> "FaultSchedule":
        """Every operation fails — a dead device."""
        return cls([FaultSpec(op="any", kind="eio")])

    @classmethod
    def bad_blocks(cls, blocks: Iterable[int]) -> "FaultSchedule":
        """Reads and writes of the listed blocks fail persistently."""
        schedule = cls()
        for block_no in blocks:
            schedule.add(FaultSpec(op="read", kind="eio", block=block_no))
            schedule.add(FaultSpec(op="write", kind="eio", block=block_no))
        return schedule

    @classmethod
    def random_schedule(cls, seed: int, horizon: int = 400,
                        faults: int = 4,
                        kinds: Tuple[str, ...] = FAULT_KINDS,
                        transient: bool = True) -> "FaultSchedule":
        """Seeded random schedule over the first ``horizon`` operations.

        With ``transient=True`` every fault heals after 1-3 operations, so
        bounded retry can make progress; persistent schedules model media
        that never recovers.
        """
        rng = random.Random(seed)
        schedule = cls(seed=seed)
        for _ in range(faults):
            kind = rng.choice(kinds)
            op = {"enospc": "write", "fsync_lie": "flush",
                  "bitrot": "read", "torn": "write"}.get(kind, "any")
            count = rng.randint(1, 3) if transient else horizon
            schedule.add(FaultSpec(
                op=op, kind=kind, at=rng.randrange(horizon), count=count,
                persist=(kind == "bitrot" and rng.random() < 0.5)))
        return schedule


class FaultyDevice(BlockDevice):
    """Decorator over a :class:`BlockDevice` that injects scheduled faults.

    All physical storage stays in the inner device; this wrapper adds the
    fault schedule, the last-honest-flush shadow used by :meth:`crash`,
    and durability accounting.  Construct the engine over the wrapper and
    drive the schedule from the test.
    """

    def __init__(self, inner: BlockDevice,
                 schedule: Optional[FaultSchedule] = None) -> None:
        super().__init__(inner.block_size, inner.capacity_blocks,
                         inner.cost_model)
        self.inner = inner
        self.schedule = schedule or FaultSchedule()
        # Per-op and global operation counters (faults schedule against
        # these, so replaying the same workload replays the same faults).
        self.ops: Dict[str, int] = {"read": 0, "write": 0, "flush": 0}
        self.ops_total = 0
        # block_no -> content at last honest flush; None = block did not
        # exist then.  Only populated for blocks written since that flush.
        self._shadow: Dict[int, Optional[bytes]] = {}
        self.durable_write_ops = 0
        self.crashes = 0

    # -- scheduling ---------------------------------------------------------

    def _next(self, op: str, block_no: int) -> Optional[FaultSpec]:
        spec = self.schedule.pick(op, block_no, self.ops[op], self.ops_total)
        self.ops[op] += 1
        self.ops_total += 1
        return spec

    def _remember(self, block_no: int) -> None:
        if block_no in self._shadow:
            return
        if block_no < self.inner.num_blocks():
            self._shadow[block_no] = self.inner._read_block(block_no)
        else:
            self._shadow[block_no] = None

    # -- BlockDevice hooks --------------------------------------------------

    def num_blocks(self) -> int:
        return self.inner.num_blocks()

    def _read_block(self, block_no: int) -> bytes:
        spec = self._next("read", block_no)
        data = self.inner._read_block(block_no)
        if spec is None:
            return data
        if spec.kind == "eio":
            raise DiskError(f"injected EIO reading block {block_no}")
        if spec.kind == "bitrot":
            bit = self.schedule.rng.randrange(len(data) * 8)
            rotted = bytearray(data)
            rotted[bit // 8] ^= 1 << (bit % 8)
            rotted = bytes(rotted)
            if spec.persist:
                self._remember(block_no)
                self.inner._write_block(block_no, rotted)
            return rotted
        return data

    def _write_block(self, block_no: int, data: bytes) -> None:
        spec = self._next("write", block_no)
        if spec is None:
            self._remember(block_no)
            self.inner._write_block(block_no, data)
            return
        if spec.kind == "eio":
            raise DiskError(f"injected EIO writing block {block_no}")
        if spec.kind == "enospc":
            raise DiskFullError(
                f"injected ENOSPC writing block {block_no}")
        if spec.kind == "torn":
            self._remember(block_no)
            if block_no < self.inner.num_blocks():
                old = self.inner._read_block(block_no)
            else:
                old = bytes(self.block_size)
            cut = self.schedule.rng.randrange(1, self.block_size)
            self.inner._write_block(block_no, data[:cut] + old[cut:])
            raise DiskError(
                f"injected torn write at block {block_no} (cut {cut})")
        # Other kinds scheduled against "write" degrade to plain EIO.
        raise DiskError(f"injected {spec.kind} fault writing {block_no}")

    def _flush(self) -> None:
        spec = self._next("flush", -1)
        if spec is not None and spec.kind == "fsync_lie":
            return  # acknowledge without durability
        if spec is not None and spec.kind == "eio":
            raise DiskError("injected EIO on flush")
        self.inner._flush()
        self._shadow.clear()
        self.durable_write_ops = self.ops["write"]

    # -- crash simulation ---------------------------------------------------

    def crash(self) -> None:
        """Drop everything not durable: restore the last-honest-flush state.

        Blocks written since the last honest flush revert to their shadow
        content (zeroes if they did not exist), exactly what a power cut
        would leave on an fsync-respecting medium.
        """
        with self._lock:
            for block_no, before in self._shadow.items():
                if before is None:
                    before = bytes(self.block_size)
                self.inner._write_block(block_no, before)
            self._shadow.clear()
            self.crashes += 1

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                super().close()
                self.inner.close()


def install_hook(device: BlockDevice,
                 schedule: FaultSchedule) -> Callable[[], None]:
    """Drive a plain device's legacy fault hook from a :class:`FaultSchedule`.

    Bridge for devices that were constructed without a
    :class:`FaultyDevice` wrapper (the Figure-7 adaptation experiments):
    only *erroring* fault kinds make sense here (``eio``/``enospc``) —
    data-mutating kinds (torn, bitrot, fsync-lie) need the wrapper.
    Returns a callable that removes the hook.
    """
    counters: Dict[str, int] = {"read": 0, "write": 0, "flush": 0}
    state = {"total": 0}

    def hook(op: str, block_no: int) -> None:
        spec = schedule.pick(op, block_no, counters[op], state["total"])
        counters[op] += 1
        state["total"] += 1
        if spec is None:
            return
        if spec.kind == "enospc":
            raise DiskFullError(
                f"injected ENOSPC at block {block_no} ({op})")
        if spec.block is not None:
            raise DiskError(f"injected: bad block {block_no} ({op})")
        if spec.at is None:
            raise DiskError(f"injected: device dead ({op})")
        raise DiskError(
            f"injected {spec.kind} fault at block {block_no} ({op})")

    device.set_fault_hook(hook)
    return lambda: device.set_fault_hook(None)
