"""Online integrity scrubbing: CRC verification and corruption repair.

:class:`ScrubManager` is the quarantine registry's repair arm (the
vacuum manager's sibling): it sweeps every table's heap pages verifying
on-disk CRCs, and for each corrupt page applies the cheapest repair that
recovers the most data:

1. **Cache repair** — a clean resident copy of the page is authoritative
   (it passed its CRC when it was read): rewrite the block from memory.
   A *dirty* resident copy needs no action at all; its write-back will
   overwrite the rot.
2. **Salvage** — no healthy copy exists.  The slotted page is parsed
   defensively (bad slots skipped), decodable head versions are kept,
   the page is reformatted in place, and the survivors are re-inserted
   under a logged transaction.  Version-chain pointers into the dead
   page (its own heads' history, and other pages' prev pointers) are
   cut, the table's indexes are rebuilt, and its row count recounted —
   the table returns to full readability, minus only what the
   corruption had already destroyed.

The reformatted page image is written directly (not WAL-logged, like
index rebuilds) but stamped with the current end-of-log LSN so that a
later crash's conditional redo cannot resurrect corrupt-era records onto
it.

Triggers: a manual ``SCRUB [table]`` SQL statement, or an optional
background daemon (``scrub_interval_s``) alongside the vacuum daemon.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.access.slotted_page import SlottedPage
from repro.access.version import HEADER_SIZE, restamp, unpack_version
from repro.errors import CatalogError, ChecksumError
from repro.storage.integrity import QuarantineRegistry, retry_io
from repro.storage.page import Page, PageId
from repro.storage.wal import OP_VERSION_STAMP


class ScrubManager:
    """Verifies page CRCs table by table and repairs what it can.

    ``tables`` is a zero-argument callable returning the live
    ``{name: Table}`` mapping and ``rebuild_indexes`` a one-argument
    callable rebuilding one table's indexes (callables so catalog
    replacement on recovery is transparent); ``transactions`` supplies
    the salvage transactions, ``pool`` the buffer pool (with its
    quarantine registry attached).
    """

    def __init__(self, tables: Callable[[], dict],
                 transactions, pool,
                 registry: QuarantineRegistry,
                 rebuild_indexes: Callable[[str], int],
                 interval_s: Optional[float] = None) -> None:
        self.tables = tables
        self.transactions = transactions
        self.pool = pool
        self.registry = registry
        self.rebuild_indexes = rebuild_indexes
        self.interval_s = interval_s
        self.runs = 0
        self.pages_checked = 0
        self.pages_repaired = 0
        self.pages_salvaged = 0
        self.rows_salvaged = 0
        self.versions_dropped = 0
        self.last_run: Optional[dict] = None
        self._mutex = threading.Lock()   # one scrub at a time
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- entry points ------------------------------------------------------------

    def run(self, table_name: Optional[str] = None) -> dict:
        """Scrub one table (or all).  Returns a summary dict."""
        catalog_tables = self.tables()
        if table_name is not None and table_name not in catalog_tables:
            raise CatalogError(f"no table {table_name!r}")
        names = [table_name] if table_name is not None \
            else sorted(catalog_tables)
        summary = {"tables": 0, "pages_checked": 0, "pages_ok": 0,
                   "pages_repaired": 0, "pages_salvaged": 0,
                   "rows_salvaged": 0, "versions_dropped": 0,
                   "prev_cuts": 0}
        with self._mutex:
            for name in names:
                report = self._scrub_table(catalog_tables[name])
                summary["tables"] += 1
                for key, value in report.items():
                    summary[key] += value
            self.runs += 1
            self.pages_checked += summary["pages_checked"]
            self.pages_repaired += summary["pages_repaired"]
            self.pages_salvaged += summary["pages_salvaged"]
            self.rows_salvaged += summary["rows_salvaged"]
            self.versions_dropped += summary["versions_dropped"]
            summary["at"] = time.time()
            self.last_run = summary
        return summary

    # -- background daemon -------------------------------------------------------

    def start(self) -> None:
        """Start the interval daemon (no-op without an interval)."""
        if self.interval_s is None or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="scrub-daemon", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def set_interval(self, interval_s: Optional[float]) -> None:
        """Re-pace (or stop/start) the daemon online; ``Event.wait``
        wakes on ``stop()``, so the new pace applies immediately."""
        if self._thread is not None:
            self.stop()
        self.interval_s = interval_s
        if interval_s is not None:
            self.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run()
            except Exception:  # noqa: BLE001 — daemon must survive races
                pass

    # -- the scrubber ------------------------------------------------------------

    def _scrub_table(self, table) -> dict:
        report = {"pages_checked": 0, "pages_ok": 0, "pages_repaired": 0,
                  "pages_salvaged": 0, "rows_salvaged": 0,
                  "versions_dropped": 0, "prev_cuts": 0}
        files = self.pool.files
        file_id = table.heap.file_id
        corrupt: list[int] = []
        # Verification pass (no table latch): every page either verifies,
        # is repaired from a clean cached copy, or is queued for salvage.
        for page_no in range(files.file_size_pages(file_id)):
            page_id = PageId(file_id, page_no)
            report["pages_checked"] += 1
            resident = self._resident(page_id)
            if resident is not None and resident.dirty:
                # The cached copy is newer than the disk image; its
                # write-back will overwrite whatever is on disk.
                report["pages_ok"] += 1
                continue
            try:
                block = retry_io(lambda: files.read_page(page_id))
                Page.from_block(page_id, block)
            except ChecksumError:
                if resident is not None:
                    # Clean resident copy: it verified when read, so it
                    # is authoritative — rewrite the rotten block.
                    with resident.latch:
                        retry_io(lambda: files.write_page(
                            page_id, resident.to_block()))
                    self.registry.clear(file_id, page_no)
                    report["pages_repaired"] += 1
                else:
                    corrupt.append(page_no)
                continue
            # Healthy on disk: drop any stale quarantine entry (a
            # transient fault may have healed, or repair already ran).
            self.registry.clear(file_id, page_no)
            report["pages_ok"] += 1
        if corrupt:
            salvaged, dropped, cuts = self._salvage(table, corrupt)
            report["pages_salvaged"] += len(corrupt)
            report["rows_salvaged"] += salvaged
            report["versions_dropped"] += dropped
            report["prev_cuts"] += cuts
        return report

    def _resident(self, page_id: PageId) -> Optional[Page]:
        with self.pool._lock:
            return self.pool._frames.get(page_id)

    def _salvage(self, table, page_nos: list[int]) -> tuple[int, int, int]:
        """Reformat the corrupt pages of one table, re-inserting every
        decodable head row.  Returns (rows salvaged, versions dropped,
        prev pointers cut)."""
        files = self.pool.files
        file_id = table.heap.file_id
        wal = self.transactions.wal
        txn = self.transactions.begin()
        salvaged = dropped = cuts = 0
        dead = set(page_nos)
        try:
            with table._latch:
                keep: list[bytes] = []
                for page_no in page_nos:
                    page_id = PageId(file_id, page_no)
                    rows, lost = self._extract(table, page_id)
                    keep.extend(rows)
                    dropped += lost
                    # Reformat in place, stamped at the log's high-water
                    # mark so conditional redo after a later crash
                    # cannot replay corrupt-era records onto it.
                    fresh = Page(page_id, files.disk.device.block_size)
                    SlottedPage.format(fresh)
                    if wal is not None:
                        fresh.lsn = wal.next_lsn - 1
                    retry_io(lambda: files.write_page(
                        page_id, fresh.to_block()))
                    self.pool.discard_page(page_id)
                    self.registry.clear(file_id, page_no)
                for payload in keep:
                    table.heap.insert(payload, txn=txn)
                    salvaged += 1
                if table.versioned:
                    cuts = self._cut_dangling_prev(table, dead, txn)
            txn.commit()
        except BaseException:
            txn.abort()
            raise
        if keep or cuts or table.versioned:
            self.rebuild_indexes(table.name)
            with table._latch:
                table.row_count = table.bootstrap_stats()[0]
        return salvaged, dropped, cuts

    def _extract(self, table, page_id: PageId) -> tuple[list[bytes], int]:
        """Defensively pull decodable payloads off a corrupt page.

        Returns (payloads worth re-inserting, records dropped).  On a
        versioned table only head versions survive (their history
        pointers are cut — the chain may run through the garbage);
        payloads that fail schema decoding are dropped."""
        files = self.pool.files
        lost = 0
        keep: list[bytes] = []
        try:
            block = retry_io(lambda: files.read_page(page_id))
            page = Page.from_block(page_id, block, verify=False)
            view = SlottedPage(page)
            slots = range(view.num_slots)
        except Exception:  # noqa: BLE001 — even the layout is garbage
            return [], 0
        for slot in slots:
            try:
                payload = view.read(slot)
            except Exception:  # noqa: BLE001
                continue
            try:
                if table.versioned:
                    header = unpack_version(payload)
                    table.schema.decode(payload[HEADER_SIZE:])
                    if not header.is_head:
                        lost += 1   # superseded history: droppable
                        continue
                    if header.prev is not None:
                        payload = restamp(payload, cut_prev=True)
                else:
                    table.schema.decode(payload)
            except Exception:  # noqa: BLE001 — rotted payload
                lost += 1
                continue
            keep.append(payload)
        return keep, lost

    def _cut_dangling_prev(self, table, dead: set, txn) -> int:
        """Cut version-chain prev pointers that lead into reformatted
        pages — a dangling pointer would break chain walks forever,
        while a cut merely shortens visible history."""
        cuts = 0
        for rid, payload in list(table.heap.scan()):
            try:
                header = unpack_version(payload)
            except Exception:  # noqa: BLE001
                continue
            if header.prev is not None and header.prev.page_no in dead:
                table.heap.update(rid, restamp(payload, cut_prev=True),
                                  txn=txn, op=OP_VERSION_STAMP)
                cuts += 1
        return cuts

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "runs": self.runs,
            "pages_checked": self.pages_checked,
            "pages_repaired": self.pages_repaired,
            "pages_salvaged": self.pages_salvaged,
            "rows_salvaged": self.rows_salvaged,
            "versions_dropped": self.versions_dropped,
            "interval_s": self.interval_s,
            "last_run": self.last_run,
        }
