"""Version garbage collection for multi-version (snapshot-isolated) heaps.

MVCC never reclaims space at delete/update time: a delete only stamps the
head's ``xmax`` and an update pushes the pre-image down the row's version
chain, so concurrent snapshots keep reading.  :class:`VacuumManager` is
the background collector that makes the storage bounded again, pruning
exactly what no live (or future) read view can see:

- the *horizon* is the oldest transaction id any active snapshot might
  still care about (:meth:`TransactionManager.snapshot_horizon`);
- a **head** whose ``xmax`` committed strictly below the horizon is dead
  to everyone: its index entries are unlinked and the head plus its
  whole chain are deleted from the heap;
- on a live head, the chain is walked until the first copy whose
  ``xmax`` is below the horizon — that copy and everything older is
  unreachable by any snapshot, so the last-kept version's ``prev``
  pointer is cut (a header-only ``VERSION_STAMP`` rewrite) and the tail
  deleted.

All surgery for one table happens inside a transaction under the table
latch (readers chain-walk under the same latch, so no pointer ever
dangles mid-walk), and every mutation is WAL-logged — a *process crash*
mid-vacuum leaves a recovery loser whose undo restores the chain
intact.  An in-process exception aborts the vacuum transaction without
physical undo; mutation order makes that safe: a head is deleted (and a
prev pointer cut) *before* the chain below it, so an interrupted prune
can only strand unreferenced copies — a bounded space leak cleaned by a
later heap audit, never a dangling pointer.

Triggers: a manual ``VACUUM [table]`` SQL statement, an auto-threshold
(``dead_versions`` per table, checked after commits), and an optional
background daemon thread running on a fixed interval.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.access.heap_file import RID
from repro.access.version import HEADER_SIZE, restamp, unpack_version
from repro.errors import CatalogError, KeyNotFoundError, PageLayoutError
from repro.storage.wal import OP_VERSION_STAMP


class VacuumManager:
    """Prunes versions no snapshot needs, per table, transactionally.

    ``tables`` is a zero-argument callable returning the live
    ``{name: Table}`` mapping (a callable so catalog replacement on
    recovery is transparent); ``transactions`` the
    :class:`~repro.data.transactions.TransactionManager` that supplies
    horizons and vacuum transactions.
    """

    def __init__(self, tables: Callable[[], dict],
                 transactions,
                 threshold: int = 256,
                 interval_s: Optional[float] = None) -> None:
        self.tables = tables
        self.transactions = transactions
        self.threshold = threshold
        self.interval_s = interval_s
        self.runs = 0
        self.auto_runs = 0
        self.versions_reclaimed = 0
        self.rows_reclaimed = 0
        self.last_run: Optional[dict] = None
        self._mutex = threading.Lock()   # one vacuum at a time
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- entry points ------------------------------------------------------------

    def run(self, table_name: Optional[str] = None) -> dict:
        """Vacuum one table (or every versioned table).  Returns a
        summary: versions and whole rows reclaimed, tables visited."""
        catalog_tables = self.tables()
        if table_name is not None and table_name not in catalog_tables:
            raise CatalogError(f"no table {table_name!r}")
        names = [table_name] if table_name is not None \
            else sorted(catalog_tables)
        summary = {"tables": 0, "versions": 0, "rows": 0}
        with self._mutex:
            for name in names:
                table = catalog_tables[name]
                if not getattr(table, "versioned", False):
                    continue
                versions, rows = self._vacuum_table(table)
                summary["tables"] += 1
                summary["versions"] += versions
                summary["rows"] += rows
            self.runs += 1
            self.versions_reclaimed += summary["versions"]
            self.rows_reclaimed += summary["rows"]
            self.last_run = summary
        return summary

    def maybe(self, table_name: str) -> Optional[dict]:
        """Auto-threshold trigger: vacuum the table if its dead-version
        gauge crossed the configured threshold."""
        table = self.tables().get(table_name)
        if table is None or not getattr(table, "versioned", False):
            return None
        if table.dead_versions < self.threshold:
            return None
        summary = self.run(table_name)
        self.auto_runs += 1
        return summary

    # -- background daemon -------------------------------------------------------

    def start(self) -> None:
        """Start the interval daemon (no-op without an interval)."""
        if self.interval_s is None or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="vacuum-daemon", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run()
            except Exception:  # noqa: BLE001 — daemon must survive races
                pass

    # -- the collector -----------------------------------------------------------

    def _vacuum_table(self, table) -> tuple[int, int]:
        txn = self.transactions.begin()
        removed_versions = removed_rows = 0
        try:
            # Candidate heads are collected without the table latch
            # (page latches make the reads safe); each row's surgery
            # then re-reads its head under a short per-row latch hold,
            # so writers and chain-walking readers are never blocked for
            # a whole-table pass.  The horizon is captured once up
            # front — it only moves forward, so it stays conservative.
            horizon = self.transactions.snapshot_horizon()
            candidates = [rid for rid, payload in table.heap.scan()
                          if unpack_version(payload).is_head]
            remaining_dead = 0
            for rid in candidates:
                with table._latch:
                    try:
                        payload = table.heap.read(rid)
                    except PageLayoutError:
                        continue    # head vanished since collection
                    header = unpack_version(payload)
                    if not header.is_head:
                        continue    # slot recycled into a chain copy
                    if header.xmax != 0 and header.xmax < horizon:
                        # Dead to every live and future snapshot.
                        removed_versions += self._drop_row(
                            table, rid, header, payload, txn)
                        removed_rows += 1
                        continue
                    if header.xmax != 0:
                        remaining_dead += 1   # dead, but still visible
                    pruned, kept = self._prune_chain(
                        table, rid, header, payload, horizon, txn)
                    removed_versions += pruned
                    remaining_dead += kept
            with table._latch:
                table.dead_versions = remaining_dead
            txn.commit()
        except BaseException:
            txn.abort()
            raise
        return removed_versions, removed_rows

    def _drop_row(self, table, rid: RID, header, payload: bytes,
                  txn) -> int:
        """Unlink a dead head from its indexes and delete head + chain.
        Returns the number of heap records removed.

        The head goes first: if the vacuum is interrupted after it, the
        chain below is merely unreferenced (a leak a later pass of a
        fresh insert's slot reuse absorbs), never a dangling pointer.
        """
        row = table.schema.decode(payload[HEADER_SIZE:])
        for index in table.indexes.values():
            try:
                if index.definition.unique and \
                        index.lookup_eq(index.key_values(row)) != [rid]:
                    # The key was recycled: the unique entry now points
                    # at a *live* replacement row (dead-key takeover).
                    # Unique deletes are RID-blind, so deleting here
                    # would orphan the live row from its index.
                    continue
                index.delete(row, rid)
            except (KeyNotFoundError, PageLayoutError):
                pass    # entry already unlinked (rebuild, key takeover)
        chain = self._chain_rids(table, header)
        table.heap.delete(rid, txn=txn)
        for member in chain:
            table.heap.delete(member, txn=txn)
        return len(chain) + 1

    def _prune_chain(self, table, head_rid: RID, header, payload: bytes,
                     horizon: int, txn) -> tuple[int, int]:
        """Cut a live head's chain at the first copy below the horizon.
        Returns (versions removed, versions kept-but-dead)."""
        keeper_rid, keeper_payload = head_rid, payload
        prev = header.prev
        kept = 0
        while prev is not None:
            try:
                copy_payload = table.heap.read(prev)
            except PageLayoutError:
                return 0, kept   # defensive: chain already truncated
            copy_header = unpack_version(copy_payload)
            if copy_header.xmax != 0 and copy_header.xmax < horizon:
                # This copy and everything older is unreachable.
                table.heap.update(
                    keeper_rid, restamp(keeper_payload, cut_prev=True),
                    txn=txn, op=OP_VERSION_STAMP)
                doomed = [prev] + self._chain_rids(table, copy_header)
                for member in doomed:
                    table.heap.delete(member, txn=txn)
                return len(doomed), kept
            kept += 1
            keeper_rid, keeper_payload = prev, copy_payload
            prev = copy_header.prev
        return 0, kept

    @staticmethod
    def _chain_rids(table, header) -> list[RID]:
        """All chain members strictly below ``header``, oldest last."""
        out: list[RID] = []
        prev = header.prev
        while prev is not None:
            try:
                payload = table.heap.read(prev)
            except PageLayoutError:
                break
            out.append(prev)
            prev = unpack_version(payload).prev
        return out

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "runs": self.runs,
            "auto_runs": self.auto_runs,
            "versions_reclaimed": self.versions_reclaimed,
            "rows_reclaimed": self.rows_reclaimed,
            "threshold": self.threshold,
            "interval_s": self.interval_s,
            "last_run": self.last_run,
        }
