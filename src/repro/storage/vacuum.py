"""Version garbage collection for multi-version (snapshot-isolated) heaps.

MVCC never reclaims space at delete/update time: a delete only stamps the
head's ``xmax`` and an update pushes the pre-image down the row's version
chain, so concurrent snapshots keep reading.  :class:`VacuumManager` is
the background collector that makes the storage bounded again, pruning
exactly what no live (or future) read view can see:

- the *horizon* is the oldest transaction id any active snapshot might
  still care about (:meth:`TransactionManager.snapshot_horizon`);
- a **head** whose ``xmax`` committed strictly below the horizon is dead
  to everyone: every index entry any of its versions ever carried
  (retained superseded-key entries included) is unlinked — RID-aware,
  so a live row that recycled one of those keys keeps its own entry —
  and the head plus its whole chain are deleted from the heap;
- on a live head, the chain is walked until the first copy whose
  ``xmax`` is below the horizon — that copy and everything older is
  unreachable by any snapshot, so the last-kept version's ``prev``
  pointer is cut (a header-only ``VERSION_STAMP`` rewrite) and the tail
  deleted; superseded-key index entries whose keys no *kept* version
  carries are unlinked in the same step (the superseding version has
  fallen below the horizon, so no current or future snapshot can probe
  its way to the pruned versions).

All surgery for one table happens inside a transaction under the table
latch (readers chain-walk under the same latch, so no pointer ever
dangles mid-walk), and every mutation is WAL-logged — a *process crash*
mid-vacuum leaves a recovery loser whose undo restores the chain
intact.  An in-process exception aborts the vacuum transaction without
physical undo; mutation order makes that safe: a head is deleted (and a
prev pointer cut) *before* the chain below it, so an interrupted prune
can only strand unreferenced copies — a bounded space leak cleaned by a
later heap audit, never a dangling pointer.

Triggers: a manual ``VACUUM [table]`` SQL statement, an auto trigger
(absolute ``dead_versions`` per table *or* dead-version fraction of the
table, checked after commits), and an optional background daemon thread
running on a fixed interval.

When a table owns a columnar sibling store, pruned versions are not
discarded: each pass collects every ``(row, xmin, xmax)`` it removes and
installs them as history blocks inside the same vacuum transaction —
that is what ``AS OF`` time travel reads.  The pass may also rebuild the
table's columnar *mirror* (a full dump serving analytical scans), but
only when the table has been cold since the previous visit — rebuilds
are priced as analytics work and must not tax a busy OLTP table.  A
manual ``VACUUM`` is ``aggressive`` and rebuilds unconditionally.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.access.heap_file import RID
from repro.access.version import HEADER_SIZE, restamp, unpack_version
from repro.errors import CatalogError, KeyNotFoundError, PageLayoutError
from repro.storage.wal import OP_VERSION_STAMP


class VacuumManager:
    """Prunes versions no snapshot needs, per table, transactionally.

    ``tables`` is a zero-argument callable returning the live
    ``{name: Table}`` mapping (a callable so catalog replacement on
    recovery is transparent); ``transactions`` the
    :class:`~repro.data.transactions.TransactionManager` that supplies
    horizons and vacuum transactions.
    """

    def __init__(self, tables: Callable[[], dict],
                 transactions,
                 threshold: int = 256,
                 interval_s: Optional[float] = None,
                 on_stats_change: Optional[Callable[[str], None]] = None,
                 dead_fraction: float = 0.2,
                 min_dead: int = 128,
                 mirror_min_rows: int = 256,
                 ) -> None:
        self.tables = tables
        self.transactions = transactions
        self.threshold = threshold
        #: Fraction-based pacing: besides the absolute threshold, a
        #: table auto-triggers once at least ``min_dead`` versions are
        #: dead *and* they make up ``dead_fraction`` of the table —
        #: small hot tables vacuum early, huge tables are not hammered
        #: by a fixed count they reach constantly.
        self.dead_fraction = dead_fraction
        self.min_dead = min_dead
        #: Tables below this row count never get a columnar mirror from
        #: auto-vacuum (the heap scan is already cheap).
        self.mirror_min_rows = mirror_min_rows
        self.interval_s = interval_s
        #: Called with a table name whenever a vacuum pass reclaimed
        #: anything there — the statement cache hooks this to invalidate
        #: plans whose cost estimates the reclaim may have skewed.
        self.on_stats_change = on_stats_change
        self.runs = 0
        self.auto_runs = 0
        self.versions_reclaimed = 0
        self.rows_reclaimed = 0
        self.stale_entries_reclaimed = 0
        self.versions_migrated = 0
        self.mirror_rebuilds = 0
        self.last_run: Optional[dict] = None
        #: ``table.mutations`` observed at each table's previous vacuum
        #: visit — an unchanged counter means the table was cold for a
        #: whole vacuum cycle, which is the auto mirror-rebuild gate.
        self._seen_mutations: dict[str, int] = {}
        #: Per-table vacuum report (``pg_stat``-style), surfaced through
        #: ``Database.stats()["vacuum"]["tables"]``.
        self.table_reports: dict[str, dict] = {}
        self._mutex = threading.Lock()   # one vacuum at a time
        #: Guards ``table_reports`` only.  ``_mutex`` is held for a
        #: whole vacuum pass, so ``stats()`` cannot use it to get a
        #: consistent snapshot without stalling behind the collector;
        #: this short-hold lock covers just report mutation/copy.
        self._reports_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- entry points ------------------------------------------------------------

    def run(self, table_name: Optional[str] = None,
            aggressive: bool = False) -> dict:
        """Vacuum one table (or every versioned table).  Returns a
        summary: versions, whole rows, and stale index entries
        reclaimed, versions migrated to columnar history, plus tables
        visited.  ``aggressive`` (the manual ``VACUUM`` statement)
        additionally forces a columnar mirror rebuild regardless of the
        coldness gate.  Under serializable isolation each run also
        sweeps the SSI manager's retained SIREAD trackers — committed
        read metadata is droppable on the same overlapping-transaction
        horizon that bounds version pruning."""
        catalog_tables = self.tables()
        if table_name is not None and table_name not in catalog_tables:
            raise CatalogError(f"no table {table_name!r}")
        names = [table_name] if table_name is not None \
            else sorted(catalog_tables)
        summary = {"tables": 0, "versions": 0, "rows": 0,
                   "stale_entries": 0, "versions_migrated": 0,
                   "mirror_rebuilds": 0}
        with self._mutex:
            for name in names:
                table = catalog_tables[name]
                if not getattr(table, "versioned", False):
                    continue
                versions, rows, stale, migrated, rebuilt = \
                    self._vacuum_table(table, aggressive)
                summary["tables"] += 1
                summary["versions"] += versions
                summary["rows"] += rows
                summary["stale_entries"] += stale
                summary["versions_migrated"] += migrated
                summary["mirror_rebuilds"] += rebuilt
                self._record_run(name, table, versions, rows, stale,
                                 migrated, rebuilt)
                if self.on_stats_change is not None and \
                        (versions or rows or stale or rebuilt):
                    self.on_stats_change(name)
            ssi = getattr(self.transactions, "ssi", None)
            if ssi is not None:
                summary["sireads_released"] = ssi.collect()
            self.runs += 1
            self.versions_reclaimed += summary["versions"]
            self.rows_reclaimed += summary["rows"]
            self.stale_entries_reclaimed += summary["stale_entries"]
            self.versions_migrated += summary["versions_migrated"]
            self.mirror_rebuilds += summary["mirror_rebuilds"]
            self.last_run = summary
        return summary

    def _record_run(self, name: str, table, versions: int, rows: int,
                    stale: int, migrated: int = 0,
                    rebuilt: int = 0) -> None:
        with self._reports_lock:
            self._record_run_locked(name, table, versions, rows, stale,
                                    migrated, rebuilt)

    def _record_run_locked(self, name: str, table, versions: int,
                           rows: int, stale: int, migrated: int,
                           rebuilt: int) -> None:
        report = self.table_reports.setdefault(name, {
            "runs": 0, "versions_reclaimed": 0, "rows_reclaimed": 0,
            "stale_index_entries": 0, "versions_migrated": 0,
            "mirror_rebuilds": 0, "dead_versions": 0,
            "dead_fraction": 0.0, "last_run": None})
        report["runs"] += 1
        report["versions_reclaimed"] += versions
        report["rows_reclaimed"] += rows
        report["stale_index_entries"] += stale
        report["versions_migrated"] += migrated
        report["mirror_rebuilds"] += rebuilt
        report["dead_versions"] = table.dead_versions
        report["dead_fraction"] = self._dead_fraction(table)
        report["last_run"] = {"versions": versions, "rows": rows,
                              "stale_index_entries": stale,
                              "versions_migrated": migrated,
                              "at": time.time()}

    @staticmethod
    def _dead_fraction(table) -> float:
        dead = table.dead_versions
        total = table.row_count + dead
        return dead / total if total else 0.0

    def should_trigger(self, table) -> bool:
        """Auto-vacuum pacing: an absolute dead-version count *or* a
        dead fraction of the table (with a floor so tiny tables are not
        vacuumed for a handful of versions)."""
        dead = table.dead_versions
        if dead >= self.threshold:
            return True
        return dead >= self.min_dead and \
            self._dead_fraction(table) >= self.dead_fraction

    def maybe(self, table_name: str) -> Optional[dict]:
        """Auto trigger: vacuum the table if its dead-version gauges
        crossed the pacing thresholds (:meth:`should_trigger`).

        Best-effort like the interval daemon: concurrent DDL (an index
        or the table itself dropped mid-pass) must not surface a
        storage error into the unrelated statement that tripped the
        threshold — the next trigger retries on fresh catalog state.
        """
        table = self.tables().get(table_name)
        if table is None or not getattr(table, "versioned", False):
            return None
        if not self.should_trigger(table):
            return None
        try:
            summary = self.run(table_name)
        except Exception:  # noqa: BLE001 — opportunistic, races DDL
            return None
        self.auto_runs += 1
        return summary

    # -- background daemon -------------------------------------------------------

    def start(self) -> None:
        """Start the interval daemon (no-op without an interval)."""
        if self.interval_s is None or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="vacuum-daemon", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def set_interval(self, interval_s: Optional[float]) -> None:
        """Re-pace (or stop/start) the daemon online.

        The loop's ``Event.wait`` wakes on ``stop()``, so the change
        takes effect immediately rather than after one stale interval.
        """
        if self._thread is not None:
            self.stop()
        self.interval_s = interval_s
        if interval_s is not None:
            self.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run()
            except Exception:  # noqa: BLE001 — daemon must survive races
                pass

    # -- the collector -----------------------------------------------------------

    def _vacuum_table(self, table,
                      aggressive: bool = False
                      ) -> tuple[int, int, int, int, int]:
        store = getattr(table, "columnar", None)
        if store is None:
            return self._vacuum_heap(table, None, False)
        # The store gate spans surgery, commit, and publish: an AS OF
        # reader (which materialises its merged heap ∪ history view
        # under the same gate) can never observe a version present in
        # both stores or in neither.  Lock order: gate → table latch.
        with store.gate:
            rebuild = self._want_mirror(table, store, aggressive)
            self._seen_mutations[table.name] = table.mutations
            return self._vacuum_heap(table, store, rebuild)

    def _want_mirror(self, table, store, aggressive: bool) -> bool:
        """Mirror-rebuild policy: only tables big enough to be worth
        mirroring; automatically only when the mirror is needed (none
        valid) and the table has been cold for a full vacuum cycle — a
        busy OLTP table would invalidate the mirror immediately, so
        rebuilding it would be pure overhead.  A manual ``VACUUM``
        (aggressive) skips the coldness gate, not the size gate."""
        if table.row_count < self.mirror_min_rows:
            return False
        if aggressive:
            return True
        if store.mirror_valid(table):
            return False
        return self._seen_mutations.get(table.name) == table.mutations

    def _vacuum_heap(self, table, store,
                     rebuild: bool) -> tuple[int, int, int, int, int]:
        txn = self.transactions.begin()
        removed_versions = removed_rows = removed_entries = 0
        migrated: Optional[list] = [] if store is not None else None
        try:
            # Candidate heads are collected without the table latch
            # (page latches make the reads safe); each row's surgery
            # then re-reads its head under a short per-row latch hold,
            # so writers and chain-walking readers are never blocked for
            # a whole-table pass.  The horizon is captured once up
            # front — it only moves forward, so it stays conservative.
            horizon = self.transactions.snapshot_horizon()
            candidates = [rid for rid, payload in table.heap.scan()
                          if unpack_version(payload).is_head]
            remaining_dead = 0
            for rid in candidates:
                with table._latch:
                    try:
                        payload = table.heap.read(rid)
                    except PageLayoutError:
                        continue    # head vanished since collection
                    header = unpack_version(payload)
                    if not header.is_head:
                        continue    # slot recycled into a chain copy
                    if header.xmax != 0 and header.xmax < horizon:
                        # Dead to every live and future snapshot.
                        versions, stale = self._drop_row(
                            table, rid, header, payload, txn, migrated)
                        removed_versions += versions
                        removed_entries += stale
                        removed_rows += 1
                        continue
                    if header.xmax != 0:
                        remaining_dead += 1   # dead, but still visible
                    pruned, kept, stale = self._prune_chain(
                        table, rid, header, payload, horizon, txn,
                        migrated)
                    removed_versions += pruned
                    remaining_dead += kept
                    removed_entries += stale
            with table._latch:
                table.dead_versions = remaining_dead
            # Migrate the pruned versions into columnar history and
            # (optionally) re-dump the mirror, all inside the vacuum
            # transaction: WAL makes the prune and the install one
            # crash-atomic unit.
            history_blocks = store.write_history(txn, migrated) \
                if migrated else []
            mirror_result = store.rebuild_mirror(table, txn) \
                if store is not None and rebuild else None
            txn.commit()
        except BaseException:
            txn.abort()
            raise
        if history_blocks:
            store.publish_history(history_blocks)
        if mirror_result is not None:
            store.publish_mirror(*mirror_result)
        return (removed_versions, removed_rows, removed_entries,
                len(migrated) if migrated else 0,
                1 if mirror_result is not None else 0)

    def _drop_row(self, table, rid: RID, header, payload: bytes,
                  txn, migrated: Optional[list] = None
                  ) -> tuple[int, int]:
        """Unlink a dead head from its indexes and delete head + chain.
        Returns (heap records removed, index entries unlinked).
        ``migrated`` (when the table has a columnar store) collects a
        ``(row, xmin, xmax)`` triple per removed version — all stamps
        are committed here, that is the prune precondition.

        Every key any version of the row ever carried is unlinked — the
        retained superseded-key entries as well as the latest one.
        Deletes are RID-aware, so a live row that recycled one of these
        keys (dead-key takeover) keeps its own entry.  Entries go
        first: an interrupted pass then strands unreferenced
        below-horizon copies (a bounded space leak), never a probe-able
        key pointing at freed heap slots.
        """
        members = table.chain_members(header.prev)
        rows = [table.schema.decode(payload[HEADER_SIZE:])] + \
            [table.schema.decode(p[HEADER_SIZE:]) for _, p in members]
        if migrated is not None:
            migrated.append((rows[0], header.xmin, header.xmax))
            for (_, member_payload), row in zip(members, rows[1:]):
                member = unpack_version(member_payload)
                migrated.append((row, member.xmin, member.xmax))
        stale = self._unlink_entries(table, rows, rid)
        table.heap.delete(rid, txn=txn)
        for member_rid, _ in members:
            table.heap.delete(member_rid, txn=txn)
        return len(members) + 1, stale

    @staticmethod
    def _unlink_entries(table, rows, rid: RID,
                        keep_rows=()) -> int:
        """Remove the index entries derived from ``rows`` (pointing at
        head ``rid``), except keys some row in ``keep_rows`` still
        carries.  Returns the number of entries removed."""
        removed = 0
        for index in table.indexes.values():
            kept_keys = {index.key_values(row) for row in keep_rows}
            for row in rows:
                values = index.key_values(row)
                if values in kept_keys:
                    continue
                kept_keys.add(values)   # dedup repeated history keys
                try:
                    index.delete_values(values, rid)
                    removed += 1
                except (KeyNotFoundError, PageLayoutError):
                    pass    # already unlinked (rebuild, earlier pass)
        return removed

    def _prune_chain(self, table, head_rid: RID, header, payload: bytes,
                     horizon: int, txn,
                     migrated: Optional[list] = None
                     ) -> tuple[int, int, int]:
        """Cut a live head's chain at the first copy below the horizon
        and unlink the superseded-key entries only those pruned
        versions carried.  ``migrated`` collects ``(row, xmin, xmax)``
        per pruned version for columnar history.  Returns (versions
        removed, versions kept-but-dead, entries unlinked)."""
        kept_rows = [table.schema.decode(payload[HEADER_SIZE:])]
        keeper_rid, keeper_payload = head_rid, payload
        prev = header.prev
        kept = 0
        while prev is not None:
            try:
                copy_payload = table.heap.read(prev)
            except PageLayoutError:
                return 0, kept, 0   # defensive: chain already truncated
            copy_header = unpack_version(copy_payload)
            if copy_header.xmax != 0 and copy_header.xmax < horizon:
                # This copy and everything older is unreachable: the
                # version that superseded it is below the horizon, so
                # keys only this tail carried can never be probed again.
                doomed = [(prev, copy_payload)] + \
                    table.chain_members(copy_header.prev)
                doomed_rids = [member_rid for member_rid, _ in doomed]
                doomed_rows = [table.schema.decode(p[HEADER_SIZE:])
                               for _, p in doomed]
                if migrated is not None:
                    for (_, doomed_payload), row in zip(doomed,
                                                        doomed_rows):
                        version = unpack_version(doomed_payload)
                        migrated.append((row, version.xmin,
                                         version.xmax))
                stale = self._unlink_entries(table, doomed_rows, head_rid,
                                             keep_rows=kept_rows)
                table.heap.update(
                    keeper_rid, restamp(keeper_payload, cut_prev=True),
                    txn=txn, op=OP_VERSION_STAMP)
                for member in doomed_rids:
                    table.heap.delete(member, txn=txn)
                return len(doomed_rids), kept, stale
            kept += 1
            kept_rows.append(table.schema.decode(copy_payload[HEADER_SIZE:]))
            keeper_rid, keeper_payload = prev, copy_payload
            prev = copy_header.prev
        return 0, kept, 0

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        # Per-table reports are copied under their owning lock: without
        # it a reader can hit "dict changed size during iteration" (a
        # first-time table report landing mid-copy) or read a report
        # half-updated by ``_record_run``.
        with self._reports_lock:
            tables = {name: {key: (dict(value)
                                   if isinstance(value, dict) else value)
                             for key, value in report.items()}
                      for name, report in self.table_reports.items()}
        last_run = self.last_run     # replaced wholesale, never mutated
        return {
            "runs": self.runs,
            "auto_runs": self.auto_runs,
            "versions_reclaimed": self.versions_reclaimed,
            "rows_reclaimed": self.rows_reclaimed,
            "stale_index_entries": self.stale_entries_reclaimed,
            "versions_migrated": self.versions_migrated,
            "mirror_rebuilds": self.mirror_rebuilds,
            "threshold": self.threshold,
            "dead_fraction": self.dead_fraction,
            "min_dead": self.min_dead,
            "interval_s": self.interval_s,
            "last_run": dict(last_run) if last_run is not None else None,
            "tables": tables,
        }
