"""Disk manager and file manager (Figure 5's "Disk Manager"/"File Manager").

The disk manager owns raw block allocation on one :class:`BlockDevice` and
keeps a free list so deleted pages can be recycled.  The file manager builds
named files on top: a file is an ordered list of blocks, addressed by the
access layer as ``(file_id, page_no)`` through :class:`~repro.storage.page.PageId`.

Metadata (the file table and free list) is persisted in a chain of metadata
blocks starting at block 0, so a database on a :class:`FileDevice` survives
close/reopen.  Callers must invoke :meth:`FileManager.checkpoint_metadata`
after structural changes they need durable; the buffer pool does this on
flush, and tests exercise crash/reopen cycles.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable, Optional

from repro.errors import DiskError, FileManagerError
from repro.storage.disk import BlockDevice
from repro.storage.page import PageId

_MAGIC = b"SBD1"
_HEADER_SIZE = 12  # magic(4) + payload_len(4) + next_block(4)
_NO_NEXT = 0xFFFFFFFF


class DiskManager:
    """Raw block allocator with a free list.

    Block 0 is always reserved for the metadata chain head, so the first
    allocatable block is 1.
    """

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self._free: list[int] = []
        self._next_fresh = max(1, device.num_blocks())
        self._alloc_lock = threading.Lock()

    @property
    def free_blocks(self) -> tuple[int, ...]:
        with self._alloc_lock:
            return tuple(self._free)

    def allocate(self) -> int:
        """Return a block number owned by the caller, zero-filled on disk.

        Allocator state is committed only after the zero-fill write
        succeeds: a device error here must not leak the block from the
        free list or gap the fresh-block counter.  The lock covers the
        write too, so concurrent allocators cannot claim the same
        candidate block while one of them is mid-zero-fill."""
        with self._alloc_lock:
            block_no = self._free[-1] if self._free else self._next_fresh
            self.device.write_block(block_no,
                                    bytes(self.device.block_size))
            if self._free:
                self._free.pop()
            else:
                self._next_fresh += 1
            return block_no

    def release(self, block_no: int) -> None:
        if block_no <= 0:
            raise DiskError(f"cannot release reserved block {block_no}")
        with self._alloc_lock:
            if block_no in self._free:
                raise DiskError(f"double free of block {block_no}")
            self._free.append(block_no)

    def read(self, block_no: int) -> bytes:
        return self.device.read_block(block_no)

    def write(self, block_no: int, data: bytes) -> None:
        self.device.write_block(block_no, data)

    def flush(self) -> None:
        self.device.flush()

    # -- metadata persistence helpers (used by FileManager) ------------------

    def _state(self) -> dict:
        return {"free": self._free, "next_fresh": self._next_fresh}

    def _load_state(self, state: dict) -> None:
        self._free = list(state["free"])
        self._next_fresh = int(state["next_fresh"])


class FileManager:
    """Named page files multiplexed onto one disk manager.

    Files grow one page at a time through :meth:`allocate_page`; pages are
    addressed by :class:`PageId` and remain stable for the life of the file.
    """

    def __init__(self, disk: DiskManager) -> None:
        self.disk = disk
        self._names: dict[str, int] = {}
        self._files: dict[int, list[int]] = {}
        self._next_file_id = 1
        # File-table mutations and metadata checkpoints serialize here:
        # DDL (create/drop) can race a checkpoint from another thread
        # (vacuum persisting the table before WAL-logging into it), and
        # json-serializing a dict another thread is resizing raises.
        self._table_lock = threading.RLock()
        if disk.device.num_blocks() > 0:
            self._load_metadata()

    # -- file table -----------------------------------------------------------

    def create_file(self, name: str) -> int:
        with self._table_lock:
            if name in self._names:
                raise FileManagerError(f"file {name!r} already exists")
            file_id = self._next_file_id
            self._next_file_id += 1
            self._names[name] = file_id
            self._files[file_id] = []
            return file_id

    def open_file(self, name: str) -> int:
        try:
            return self._names[name]
        except KeyError:
            raise FileManagerError(f"no such file {name!r}") from None

    def has_file(self, name: str) -> bool:
        return name in self._names

    def ensure_file(self, name: str) -> int:
        with self._table_lock:
            return self._names[name] if name in self._names \
                else self.create_file(name)

    def delete_file(self, name: str) -> None:
        with self._table_lock:
            file_id = self.open_file(name)
            for block_no in self._files[file_id]:
                self.disk.release(block_no)
            del self._files[file_id]
            del self._names[name]

    def list_files(self) -> list[str]:
        return sorted(self._names)

    def file_size_pages(self, file_id: int) -> int:
        self._check_file(file_id)
        return len(self._files[file_id])

    def file_size_bytes(self, file_id: int) -> int:
        return self.file_size_pages(file_id) * self.disk.device.block_size

    # -- page addressing -------------------------------------------------------

    def allocate_page(self, file_id: int) -> PageId:
        self._check_file(file_id)
        block_no = self.disk.allocate()
        blocks = self._files[file_id]
        blocks.append(block_no)
        return PageId(file_id, len(blocks) - 1)

    def free_last_page(self, file_id: int) -> None:
        """Truncate the file by one page (only tail pages can be freed,
        keeping page numbers stable for all remaining pages)."""
        self._check_file(file_id)
        blocks = self._files[file_id]
        if not blocks:
            raise FileManagerError(f"file {file_id} is empty")
        self.disk.release(blocks.pop())

    def block_of(self, page_id: PageId) -> int:
        self._check_file(page_id.file_id)
        blocks = self._files[page_id.file_id]
        if page_id.page_no < 0 or page_id.page_no >= len(blocks):
            raise FileManagerError(
                f"{page_id} out of range (file has {len(blocks)} pages)")
        return blocks[page_id.page_no]

    def read_page(self, page_id: PageId) -> bytes:
        return self.disk.read(self.block_of(page_id))

    def write_page(self, page_id: PageId, data: bytes) -> None:
        self.disk.write(self.block_of(page_id), data)

    def pages_of(self, file_id: int) -> Iterable[PageId]:
        self._check_file(file_id)
        for page_no in range(len(self._files[file_id])):
            yield PageId(file_id, page_no)

    # -- metadata persistence ----------------------------------------------------

    def checkpoint_metadata(self) -> None:
        """Write the file table, free list, and allocator state to the
        metadata chain rooted at block 0."""
        with self._table_lock:
            payload = json.dumps({
                "names": self._names,
                "files": {str(k): v for k, v in self._files.items()},
                "next_file_id": self._next_file_id,
                "disk": self.disk._state(),
            }).encode()
            device = self.disk.device
            chunk_size = device.block_size - _HEADER_SIZE
            chunks = [payload[i:i + chunk_size]
                      for i in range(0, len(payload), chunk_size)] or [b""]
            # Metadata continuation blocks come from the allocator like any
            # other block; previously used continuation blocks are recycled
            # first.
            old_chain = self._metadata_chain_blocks()
            needed = len(chunks) - 1
            chain = old_chain[:needed]
            while len(chain) < needed:
                chain.append(self.disk.allocate())
            for stale in old_chain[needed:]:
                self.disk.release(stale)
            block_nos = [0] + chain
            for idx, chunk in enumerate(chunks):
                next_block = (block_nos[idx + 1]
                              if idx + 1 < len(chunks) else _NO_NEXT)
                header = (_MAGIC + len(chunk).to_bytes(4, "little")
                          + next_block.to_bytes(4, "little"))
                block = header + chunk
                block += bytes(device.block_size - len(block))
                device.write_block(block_nos[idx], block)
            device.flush()
            self._metadata_blocks = chain

    def _metadata_chain_blocks(self) -> list[int]:
        return list(getattr(self, "_metadata_blocks", []))

    def _load_metadata(self) -> None:
        device = self.disk.device
        payload = bytearray()
        chain: list[int] = []
        block_no = 0
        while True:
            block = device.read_block(block_no)
            if block[:4] != _MAGIC:
                if block_no == 0 and not any(block):
                    return  # fresh, never-checkpointed device
                raise FileManagerError(
                    f"metadata block {block_no} has bad magic")
            length = int.from_bytes(block[4:8], "little")
            next_block = int.from_bytes(block[8:12], "little")
            payload += block[_HEADER_SIZE:_HEADER_SIZE + length]
            if next_block == _NO_NEXT:
                break
            chain.append(next_block)
            block_no = next_block
        state = json.loads(payload.decode())
        self._names = dict(state["names"])
        self._files = {int(k): list(v) for k, v in state["files"].items()}
        self._next_file_id = int(state["next_file_id"])
        self.disk._load_state(state["disk"])
        self._metadata_blocks = chain

    # -- helpers -------------------------------------------------------------

    def _check_file(self, file_id: int) -> None:
        if file_id not in self._files:
            raise FileManagerError(f"no such file id {file_id}")
