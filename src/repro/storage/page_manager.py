"""Page manager: allocation and free-space tracking above the buffer pool.

This is Figure 5's "Page Manager" (and the "Page Coordinator" published in
the flexibility-by-extension scenario is a coordinator wrapped around it).
It mediates between record-level callers (heap files, indexes) and the
buffer pool, and maintains a per-file free-space map so inserts can find a
page with room without scanning the file.

The free-space map is a soft hint rebuilt lazily: a stale entry only costs
an extra page inspection, never correctness.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.storage.buffer import BufferPool
from repro.storage.page import Page, PageId


class PageManager:
    """Allocation + free-space hints for one buffer pool."""

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        # file_id -> {page_no: advertised free bytes}
        self._free_space: dict[int, dict[int, int]] = defaultdict(dict)

    # -- allocation -------------------------------------------------------------

    def allocate(self, file_id: int) -> Page:
        """Allocate a fresh page in ``file_id``; returned pinned."""
        page = self.pool.new_page(file_id)
        self._free_space[file_id][page.page_id.page_no] = page.usable_size
        return page

    def fetch(self, page_id: PageId) -> Page:
        return self.pool.fetch(page_id)

    def unpin(self, page_id: PageId, dirty: bool = False) -> None:
        self.pool.unpin(page_id, dirty)

    # -- free-space map ------------------------------------------------------------

    def note_free_space(self, page_id: PageId, free_bytes: int) -> None:
        """Record the advertised free space of a page (callers report this
        after inserting or deleting records)."""
        if free_bytes <= 0:
            self._free_space[page_id.file_id].pop(page_id.page_no, None)
        else:
            self._free_space[page_id.file_id][page_id.page_no] = free_bytes

    def page_with_space(self, file_id: int,
                        needed: int) -> Optional[PageId]:
        """A page advertised to have at least ``needed`` free bytes, or
        ``None`` (caller then allocates)."""
        for page_no, free in self._free_space.get(file_id, {}).items():
            if free >= needed:
                return PageId(file_id, page_no)
        return None

    def forget_file(self, file_id: int) -> None:
        self._free_space.pop(file_id, None)

    # -- monitoring (read through the storage service properties) ---------------

    def fragmentation(self, file_id: int) -> float:
        """Fraction of advertised-free bytes across the file's pages.

        This is the "data fragmentation" figure the Discussion's monitoring
        service reads: 0.0 means densely packed, values near 1.0 mean the
        file is mostly holes.
        """
        pages = self.pool.files.file_size_pages(file_id)
        if pages == 0:
            return 0.0
        page_bytes = self.pool.files.disk.device.block_size
        free = sum(self._free_space.get(file_id, {}).values())
        return min(1.0, free / (pages * page_bytes))

    def properties(self) -> dict:
        return {
            "tracked_files": len(self._free_space),
            "tracked_pages": sum(len(m) for m in self._free_space.values()),
        }
