"""ARIES-lite crash recovery: analysis, redo, undo with compensation.

:class:`RecoveryManager` owns the three classical phases over a
:class:`~repro.storage.wal.WriteAheadLog` and a
:class:`~repro.storage.file_manager.FileManager`:

1. **Analysis** — one forward scan builds the winner/loser sets (a
   transaction with neither COMMIT nor END is a loser; an ABORT record
   alone marks an *unfinished* rollback), seeds the active-transaction
   table from the last fuzzy CHECKPOINT record (so transactions whose
   BEGIN predates the checkpoint are still found), and takes the
   checkpoint's dirty-page table as the redo lower bound: records older
   than the oldest ``rec_lsn`` in the DPT touched pages that were
   already durable at the checkpoint.

2. **Redo** — repeat history from the redo bound, *conditionally*: a
   record only touches the page when ``record.lsn > page_lsn`` (the LSN
   stored in the page trailer), so pages that made it to disk are not
   rewritten.  Byte-image records (``op = 0``) re-apply their after
   image; physiological heap records re-apply the slotted-page operation
   at their slot.  Pages whose allocation never reached the durable file
   metadata are re-allocated on the fly — their content is reconstructed
   from the log.

3. **Undo** — losers are rolled back in reverse log order.  Each undone
   record writes a redo-only CLR carrying ``undo_next_lsn``; on a
   recovery that itself crashed mid-undo, the *newest* CLR's
   ``undo_next_lsn`` is the resume point — records above it are already
   compensated and are skipped, so nothing is undone twice.  The CLR is
   forced to the log *before* the undone page is written (the WAL rule
   applies to recovery's own writes too).  A fully undone loser gets an
   END record.

   Undo is physiological for heap records: the inverse operation touches
   only the loser's own slot, never the bytes (slot directory, compacted
   payloads) that a committed transaction interleaved on the same page —
   this is what makes row-level locking crash-safe.  Byte-image records
   restore their before image verbatim (their writers — the storage
   service — serialize page access).

The manager works directly against the file manager (the buffer pool must
be empty / not yet constructed); ``Database`` runs it on reopen before
loading the catalog, then rebuilds secondary indexes from the recovered
heaps (index pages are not logged — regeneration at restart is the
documented ARIES-lite simplification).

Known limitation: undoing an in-place heap update whose before image no
longer fits its page (neighbours consumed the space after the original
write) falls back to delete + re-insert on a fresh page; a crash landing
exactly between those two compensations loses the restored row.  The
window is a handful of instructions inside recovery of an already-rare
overflow case.
"""

from __future__ import annotations

from typing import Optional

from repro.access.slotted_page import SlottedPage
from repro.errors import ChecksumError, PageLayoutError
from repro.storage.file_manager import FileManager
from repro.storage.integrity import retry_io
from repro.storage.page import Page, PageId
from repro.storage.wal import (
    OP_BYTES,
    OP_HEAP_DELETE,
    OP_HEAP_INSERT,
    OP_HEAP_UPDATE,
    OP_VERSION_CREATE,
    OP_VERSION_STAMP,
    LogKind,
    LogRecord,
    WriteAheadLog,
)


class RecoveryManager:
    """Analysis → redo → undo over one WAL + file manager pair.

    ``file_manager`` may be ``None`` for analysis-only use (the WAL's own
    :meth:`~repro.storage.wal.WriteAheadLog.analyze` delegates here).
    """

    def __init__(self, wal: WriteAheadLog,
                 file_manager: Optional[FileManager]) -> None:
        self.wal = wal
        self.files = file_manager
        # Corrupt-page handling (populated by :meth:`recover`): pages
        # whose on-disk image failed its CRC are either *rebuilt* — the
        # log holds their entire history, so redo replays them onto a
        # zeroed image held in memory until the replay succeeds — or
        # *quarantined* for the online scrubber.
        self._first_update: dict[PageId, LogRecord] = {}
        self._redo_lsn = 0
        self._rebuild_allowed = False
        self._rebuilding: dict[PageId, Page] = {}
        self._quarantined: set[PageId] = set()

    # -- phases -----------------------------------------------------------------

    def analyze(self, collect_updates: bool = True) -> dict:
        """Forward scan: winners, losers, per-transaction last LSNs, the
        redo lower bound, and the tables carried by the last fuzzy
        checkpoint.  ``collect_updates=False`` skips materializing the
        update records (and their images) for callers that only need the
        classification, e.g. :meth:`WriteAheadLog.has_losers`."""
        seen: set[int] = set()
        committed: set[int] = set()
        finished: set[int] = set()
        last_lsn: dict[int, int] = {}
        dirty_pages: dict[PageId, int] = {}
        updates: list[LogRecord] = []
        redo_lsn = 0
        for record in self.wal.records():
            if record.kind is LogKind.CHECKPOINT:
                ckpt_dirty, ckpt_active = record.checkpoint_tables()
                dirty_pages.update(ckpt_dirty)
                seen.update(ckpt_active)
                for txn, lsn in ckpt_active.items():
                    last_lsn.setdefault(txn, lsn)
                # The redo bound was computed by the checkpointer before
                # it snapshotted the DPT, so pages dirtied while the
                # checkpoint was being taken are covered (their records'
                # LSNs are at or above the bound).
                redo_lsn = record.checkpoint_redo_lsn()
                continue
            seen.add(record.txn_id)
            last_lsn[record.txn_id] = record.lsn
            if record.kind is LogKind.COMMIT:
                committed.add(record.txn_id)
            elif record.kind is LogKind.END:
                finished.add(record.txn_id)
            elif record.kind in (LogKind.UPDATE, LogKind.CLR):
                if collect_updates:
                    updates.append(record)
                dirty_pages.setdefault(record.page_id, record.lsn)
        return {
            "committed": committed,
            "losers": seen - committed - finished,
            "last_lsn": last_lsn,
            "dirty_pages": dirty_pages,
            "redo_lsn": redo_lsn,
            "updates": updates,
        }

    def recover(self) -> dict:
        analysis = self.analyze()
        updates: list[LogRecord] = analysis["updates"]
        committed: set[int] = analysis["committed"]
        losers: set[int] = analysis["losers"]
        redo_lsn: int = analysis["redo_lsn"]

        self._first_update = {}
        for record in updates:
            self._first_update.setdefault(record.page_id, record)
        self._redo_lsn = redo_lsn
        self._rebuilding = {}
        self._quarantined = set()
        self._rebuild_allowed = True

        redone = redo_skipped = redo_pruned = unknown = 0
        # -- redo: repeat history, conditionally -------------------------------
        for record in updates:
            if record.lsn < redo_lsn:
                redo_pruned += 1
                continue
            page = self._load_page(record.page_id)
            if page is None:
                unknown += 1
                continue
            if record.lsn > page.lsn:
                try:
                    self._apply(page, record.op, record.offset,
                                record.after)
                except Exception:
                    if record.page_id in self._rebuilding:
                        # Structural replay failure: abandon the rebuild
                        # and leave the page quarantined for the
                        # scrubber instead of failing recovery.
                        del self._rebuilding[record.page_id]
                        self._quarantined.add(record.page_id)
                        continue
                    raise
                page.lsn = record.lsn
                self._store_page(page)
                redone += 1
            else:
                redo_skipped += 1
        self._rebuild_allowed = False

        # -- undo: losers in reverse order, with CLR compensation -------------
        undone = clrs = 0
        # The newest CLR per loser marks where an earlier (crashed) undo
        # stopped: records above its undo_next_lsn are compensated.
        resume: dict[int, int] = {}
        undo_prev: dict[int, int] = {
            txn: analysis["last_lsn"].get(txn, 0) for txn in losers}
        for record in reversed(updates):
            if record.txn_id not in losers:
                continue
            if record.kind is LogKind.CLR:
                resume.setdefault(record.txn_id, record.undo_next_lsn)
                continue
            if record.lsn > resume.get(record.txn_id, record.lsn):
                continue  # already compensated by an earlier undo pass
            page = self._load_page(record.page_id)
            if page is None:
                unknown += 1
                continue
            undone += 1
            clrs += self._undo_record(record, page, undo_prev)
        for txn in sorted(losers):
            self.wal.append(txn, LogKind.END,
                            prev_lsn=undo_prev.get(txn, 0))
        if losers:
            self.wal.flush()
        # Rebuilt pages replayed their whole history cleanly: write them
        # out now (a failed rebuild never reaches the device, so a
        # quarantined page cannot masquerade as healthy).
        for page in self._rebuilding.values():
            self.files.write_page(page.page_id, page.to_block())
        if self.files is not None:
            self.files.disk.flush()
        return {
            "redone": redone,
            "redo_skipped": redo_skipped,
            "redo_pruned": redo_pruned,
            "undone": undone,
            "clrs": clrs,
            "unknown_pages": unknown,
            "committed": sorted(committed),
            "losers": sorted(losers),
            "rebuilt_pages": sorted(
                (p.file_id, p.page_no) for p in self._rebuilding),
            "quarantined_pages": sorted(
                (p.file_id, p.page_no) for p in self._quarantined),
        }

    # -- record application ------------------------------------------------------

    @staticmethod
    def _apply(page: Page, op: int, slot_or_offset: int,
               image: bytes) -> None:
        """Apply a record's redo action to an in-memory page."""
        if op == OP_BYTES:
            page.write(slot_or_offset, image)
            return
        view = SlottedPage(page)
        if view._free_ptr == 0:
            # The page was allocated (zeros) but its formatting was part
            # of the logged insert being replayed.
            view = SlottedPage.format(page)
        if op in (OP_HEAP_INSERT, OP_VERSION_CREATE):
            view.place(slot_or_offset, image)
        elif op == OP_HEAP_DELETE:
            view.delete(slot_or_offset)
        elif op in (OP_HEAP_UPDATE, OP_VERSION_STAMP):
            view.update(slot_or_offset, image)
        else:
            raise PageLayoutError(f"unknown heap op {op}")

    _UNDO_OP = {OP_HEAP_INSERT: OP_HEAP_DELETE,
                OP_HEAP_DELETE: OP_HEAP_INSERT,
                OP_HEAP_UPDATE: OP_HEAP_UPDATE,
                # Version-chain records undo physiologically too: an old
                # -version copy is removed, a header stamp restores its
                # same-size before image (never overflows the page).
                OP_VERSION_CREATE: OP_HEAP_DELETE,
                OP_VERSION_STAMP: OP_VERSION_STAMP}

    def _undo_record(self, record: LogRecord, page: Page,
                     undo_prev: dict[int, int]) -> int:
        """Undo one loser record (page already loaded), writing CLR(s).
        Returns the number of CLRs emitted."""
        txn = record.txn_id
        inverse_op = self._UNDO_OP.get(record.op, OP_BYTES)
        try:
            self._compensate(txn, record.page_id, inverse_op,
                             record.offset, record.before,
                             record.prev_lsn, undo_prev, page)
            return 1
        except PageLayoutError:
            if record.op != OP_HEAP_UPDATE:
                raise
        # In-place update undo overflowed: free the slot, then restore
        # the before image on a fresh page (see module docstring for the
        # crash window this leaves).
        self._compensate(txn, record.page_id, OP_HEAP_DELETE,
                         record.offset, b"", record.prev_lsn,
                         undo_prev, page)
        fresh_id = self.files.allocate_page(record.page_id.file_id)
        fresh = Page(fresh_id, self.files.disk.device.block_size)
        SlottedPage.format(fresh)
        self._compensate(txn, fresh_id, OP_HEAP_INSERT, 0,
                         record.before, record.prev_lsn, undo_prev, fresh)
        return 2

    def _compensate(self, txn: int, page_id: PageId, op: int, slot: int,
                    image: bytes, undo_next: int,
                    undo_prev: dict[int, int],
                    page: Page) -> None:
        """Apply one compensating action: log the CLR, force it, then
        write the page (WAL-before-page, recovery edition)."""
        clr_lsn = self.wal.log_clr(txn, page_id, slot, after=image,
                                   undo_next_lsn=undo_next,
                                   prev_lsn=undo_prev.get(txn, 0), op=op)
        undo_prev[txn] = clr_lsn
        self.wal.flush(upto_lsn=clr_lsn)
        self._apply(page, op, slot, image)
        page.lsn = clr_lsn
        self._store_page(page)

    # -- page I/O ----------------------------------------------------------------

    def _load_page(self, page_id: PageId) -> Optional[Page]:
        """Read a page for recovery, re-allocating tail pages whose
        allocation never reached the durable file metadata.  Returns
        ``None`` when the file itself is unknown (its creation was never
        checkpointed — nothing to recover into) or the page is corrupt
        and not rebuildable from the log."""
        fid = page_id.file_id
        try:
            size = self.files.file_size_pages(fid)
        except Exception:
            return None
        rebuilt = self._rebuilding.get(page_id)
        if rebuilt is not None:
            return rebuilt
        if page_id in self._quarantined:
            return None
        while size <= page_id.page_no:
            self.files.allocate_page(fid)
            size += 1
        block = retry_io(lambda: self.files.read_page(page_id))
        try:
            return Page.from_block(page_id, block)
        except ChecksumError:
            first = self._first_update.get(page_id)
            if (self._rebuild_allowed and first is not None
                    and first.lsn >= self._redo_lsn
                    and first.op in (OP_HEAP_INSERT, OP_VERSION_CREATE)
                    and first.offset == 0):
                # Birth signature: the page's earliest log record is the
                # slot-0 insert that formatted it, so its entire history
                # is in the redo range — replay onto a zeroed image.
                page = Page(page_id, self.files.disk.device.block_size)
                self._rebuilding[page_id] = page
                return page
            self._quarantined.add(page_id)
            return None

    def _store_page(self, page: Page) -> None:
        if page.page_id in self._rebuilding:
            return  # deferred until the whole rebuild replays cleanly
        self.files.write_page(page.page_id, page.to_block())
