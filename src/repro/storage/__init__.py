"""Storage layer: simulated devices, files, pages, buffer pool, WAL.

This package is the bottom of the SBDMS stack — the paper's *Storage
Services* layer ("work at byte level and handle the physical specification
of non-volatile devices").  The plain classes here are wrapped as SBDMS
services by :mod:`repro.storage.services`.
"""

from repro.storage.buffer import (
    BufferPool,
    BufferStats,
    ClockPolicy,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    MRUPolicy,
    POLICIES,
    make_policy,
)
from repro.storage.disk import (
    DEFAULT_BLOCK_SIZE,
    BlockDevice,
    DiskCostModel,
    DiskStats,
    FileDevice,
    MemoryDevice,
)
from repro.storage.file_manager import DiskManager, FileManager
from repro.storage.page import (
    CHECKSUM_SIZE,
    LSN_SIZE,
    PAGE_TRAILER_SIZE,
    Page,
    PageId,
)
from repro.storage.page_manager import PageManager
from repro.storage.recovery import RecoveryManager
from repro.storage.vacuum import VacuumManager
from repro.storage.wal import LogKind, LogRecord, WriteAheadLog

__all__ = [
    "BufferPool",
    "BufferStats",
    "ClockPolicy",
    "FIFOPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "POLICIES",
    "make_policy",
    "DEFAULT_BLOCK_SIZE",
    "BlockDevice",
    "DiskCostModel",
    "DiskStats",
    "FileDevice",
    "MemoryDevice",
    "DiskManager",
    "FileManager",
    "CHECKSUM_SIZE",
    "LSN_SIZE",
    "PAGE_TRAILER_SIZE",
    "Page",
    "PageId",
    "PageManager",
    "RecoveryManager",
    "VacuumManager",
    "LogKind",
    "LogRecord",
    "WriteAheadLog",
]
