"""Buffer pool with pluggable replacement policies (Figure 5's
"Buffer Manager" / "Buffer Coordinator").

The pool caches :class:`~repro.storage.page.Page` images over a
:class:`~repro.storage.file_manager.FileManager`.  Callers pin pages
(:meth:`BufferPool.fetch` / :meth:`BufferPool.new_page`), mutate them through
the page API, and unpin with a dirty hint.  Replacement policy is a strategy
object so the selection experiments can swap policies at run time — the
paper's "different services provide the same functionality using the same
type of interfaces" applied to eviction.

WAL integration: if a ``wal`` is attached, a dirty page is only written
after the log has been flushed up to the page's LSN (the standard
write-ahead rule).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional, Protocol

from repro.errors import (
    BufferPoolError,
    BufferPoolFullError,
    ChecksumError,
    PageNotPinnedError,
)
from repro.faults.crashpoints import maybe_crash
from repro.storage.file_manager import FileManager
from repro.storage.integrity import QuarantineRegistry, retry_io
from repro.storage.page import Page, PageId


@dataclass
class BufferStats:
    """Hit/miss/eviction counters; the quality experiments report hit rate."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0


class ReplacementPolicy(Protocol):
    """Strategy interface for victim selection.

    The pool notifies the policy on every admit/touch/evict; ``victim``
    must return an unpinned resident page id, or ``None`` if it has no
    candidate (the pool then raises :class:`BufferPoolFullError`).
    """

    name: str

    def admit(self, page_id: PageId) -> None: ...

    def touch(self, page_id: PageId) -> None: ...

    def evict(self, page_id: PageId) -> None: ...

    def victim(self, pinned: set[PageId]) -> Optional[PageId]: ...


class LRUPolicy:
    """Least-recently-used eviction."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def admit(self, page_id: PageId) -> None:
        self._order[page_id] = None

    def touch(self, page_id: PageId) -> None:
        if page_id in self._order:
            self._order.move_to_end(page_id)

    def evict(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)

    def victim(self, pinned: set[PageId]) -> Optional[PageId]:
        for page_id in self._order:
            if page_id not in pinned:
                return page_id
        return None


class MRUPolicy(LRUPolicy):
    """Most-recently-used eviction — wins on looping scans larger than the
    pool, which is why the selection experiment offers it as an alternate
    'workflow' for scan-heavy requests."""

    name = "mru"

    def victim(self, pinned: set[PageId]) -> Optional[PageId]:
        for page_id in reversed(self._order):
            if page_id not in pinned:
                return page_id
        return None


class FIFOPolicy:
    """First-in-first-out eviction (admission order, no touch effect)."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: OrderedDict[PageId, None] = OrderedDict()

    def admit(self, page_id: PageId) -> None:
        self._order[page_id] = None

    def touch(self, page_id: PageId) -> None:
        pass

    def evict(self, page_id: PageId) -> None:
        self._order.pop(page_id, None)

    def victim(self, pinned: set[PageId]) -> Optional[PageId]:
        for page_id in self._order:
            if page_id not in pinned:
                return page_id
        return None


class ClockPolicy:
    """Second-chance (clock) eviction."""

    name = "clock"

    def __init__(self) -> None:
        self._ring: list[PageId] = []
        self._ref: dict[PageId, bool] = {}
        self._hand = 0

    def admit(self, page_id: PageId) -> None:
        self._ring.append(page_id)
        self._ref[page_id] = True

    def touch(self, page_id: PageId) -> None:
        if page_id in self._ref:
            self._ref[page_id] = True

    def evict(self, page_id: PageId) -> None:
        if page_id in self._ref:
            idx = self._ring.index(page_id)
            self._ring.pop(idx)
            if idx < self._hand:
                self._hand -= 1
            if self._ring:
                self._hand %= len(self._ring)
            else:
                self._hand = 0
            del self._ref[page_id]

    def victim(self, pinned: set[PageId]) -> Optional[PageId]:
        if not self._ring:
            return None
        # Two full sweeps guarantee we either find a victim or prove all
        # candidates are pinned.
        for _ in range(2 * len(self._ring)):
            page_id = self._ring[self._hand]
            if page_id in pinned:
                self._hand = (self._hand + 1) % len(self._ring)
                continue
            if self._ref[page_id]:
                self._ref[page_id] = False
                self._hand = (self._hand + 1) % len(self._ring)
                continue
            return page_id
        return None


class LFUPolicy:
    """Least-frequently-used eviction with FIFO tie-breaking."""

    name = "lfu"

    def __init__(self) -> None:
        self._counts: OrderedDict[PageId, int] = OrderedDict()

    def admit(self, page_id: PageId) -> None:
        self._counts[page_id] = 1

    def touch(self, page_id: PageId) -> None:
        if page_id in self._counts:
            self._counts[page_id] += 1

    def evict(self, page_id: PageId) -> None:
        self._counts.pop(page_id, None)

    def victim(self, pinned: set[PageId]) -> Optional[PageId]:
        best: Optional[PageId] = None
        best_count = None
        for page_id, count in self._counts.items():
            if page_id in pinned:
                continue
            if best_count is None or count < best_count:
                best, best_count = page_id, count
        return best


POLICIES: dict[str, type] = {
    cls.name: cls for cls in (LRUPolicy, MRUPolicy, FIFOPolicy,
                              ClockPolicy, LFUPolicy)
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise BufferPoolError(
            f"unknown replacement policy {name!r}; "
            f"known: {sorted(POLICIES)}") from None


class BufferPool:
    """Fixed-capacity page cache with write-back and WAL ordering."""

    def __init__(self, file_manager: FileManager, capacity: int = 64,
                 policy: str | ReplacementPolicy = "lru",
                 wal: Optional["WriteAheadLog"] = None,
                 integrity: Optional[QuarantineRegistry] = None) -> None:
        if capacity <= 0:
            raise BufferPoolError("capacity must be positive")
        self.files = file_manager
        self.capacity = capacity
        self.policy: ReplacementPolicy = (
            make_policy(policy) if isinstance(policy, str) else policy)
        self.wal = wal
        # Quarantine registry (optional): fetch() records pages that fail
        # checksum verification persistently, so scans can degrade around
        # them and the scrubber can repair them, instead of the table
        # becoming unreadable forever.
        self.integrity = integrity
        self.stats = BufferStats()
        self._frames: dict[PageId, Page] = {}
        self._lock = threading.RLock()

    # -- introspection (read by the monitoring extension service) -------------

    @property
    def resident(self) -> int:
        return len(self._frames)

    @property
    def pinned_pages(self) -> set[PageId]:
        return {pid for pid, page in self._frames.items() if page.pin_count > 0}

    def is_resident(self, page_id: PageId) -> bool:
        return page_id in self._frames

    def dirty_page_table(self) -> dict[PageId, int]:
        """Dirty pages with their recovery LSNs (the LSN that first
        dirtied each page) — the DPT a fuzzy checkpoint records."""
        with self._lock:
            return {pid: (page.rec_lsn if page.rec_lsn is not None
                          else page.lsn)
                    for pid, page in self._frames.items() if page.dirty}

    def properties(self) -> dict:
        """Functional properties exposed through the service layer
        (the Discussion's monitoring example reads these)."""
        with self._lock:
            dirty = sum(1 for p in self._frames.values() if p.dirty)
            return {
                "capacity": self.capacity,
                "resident": self.resident,
                "pinned": len(self.pinned_pages),
                "dirty": dirty,
                "policy": self.policy.name,
                "hit_rate": self.stats.hit_rate,
                "page_size": self.files.disk.device.block_size,
            }

    def set_policy(self, policy: str | ReplacementPolicy) -> None:
        """Swap the replacement policy online.

        The new policy is seeded with every resident frame in the old
        policy's rough recency order where it tracks one (admission
        order otherwise), so the pool never evicts a page the policy
        has not been told about.  Runs under the pool lock; in-flight
        pins are unaffected (pinned pages are never victims).
        """
        with self._lock:
            if isinstance(policy, str):
                if policy == self.policy.name:
                    return
                policy = make_policy(policy)
            for page_id in self._frames:
                policy.admit(page_id)
            self.policy = policy

    # -- pin / unpin -----------------------------------------------------------

    def fetch(self, page_id: PageId) -> Page:
        """Pin an existing page, reading it from disk on miss."""
        with self._lock:
            page = self._frames.get(page_id)
            if page is not None:
                self.stats.hits += 1
                self.policy.touch(page_id)
            else:
                self.stats.misses += 1
                self._ensure_frame_available()
                page = self._read_page(page_id)
                self._frames[page_id] = page
                self.policy.admit(page_id)
            page.pin_count += 1
            return page

    def _read_page(self, page_id: PageId) -> Page:
        """Read and verify a page with bounded retry.

        Transient device errors *and* checksum failures are retried (a
        re-read heals transient read-path corruption such as a one-off
        bit flip on the bus); a persistent :class:`ChecksumError`
        quarantines the page before propagating, so the first touch of a
        corrupt page is a clean statement error and later scans degrade
        around it."""
        def read_and_verify() -> Page:
            block = self.files.read_page(page_id)
            return Page.from_block(page_id, block)

        try:
            return retry_io(read_and_verify, retry_checksum=True)
        except ChecksumError:
            if self.integrity is not None:
                self.integrity.quarantine(page_id.file_id, page_id.page_no)
            raise

    def new_page(self, file_id: int) -> Page:
        """Allocate a fresh page at the tail of ``file_id`` and pin it."""
        with self._lock:
            self._ensure_frame_available()
            page_id = self.files.allocate_page(file_id)
            page = Page(page_id, self.files.disk.device.block_size)
            page.dirty = True
            page.pin_count = 1
            self._frames[page_id] = page
            self.policy.admit(page_id)
            return page

    def unpin(self, page_id: PageId, dirty: bool = False) -> None:
        with self._lock:
            page = self._frames.get(page_id)
            if page is None or page.pin_count <= 0:
                raise PageNotPinnedError(f"{page_id} is not pinned")
            page.pin_count -= 1
            if dirty:
                page.dirty = True

    class _PinGuard:
        """Context manager returned by :meth:`pinned`."""

        def __init__(self, pool: "BufferPool", page: Page) -> None:
            self._pool = pool
            self.page = page
            self.dirty = False

        def __enter__(self) -> Page:
            return self.page

        def __exit__(self, exc_type, exc, tb) -> None:
            self._pool.unpin(self.page.page_id, dirty=self.dirty or self.page.dirty)

    def pinned(self, page_id: PageId) -> "_PinGuard":
        """``with pool.pinned(pid) as page: ...`` — pin for the block scope."""
        return self._PinGuard(self, self.fetch(page_id))

    # -- flushing ---------------------------------------------------------------

    def flush_page(self, page_id: PageId) -> None:
        with self._lock:
            page = self._frames.get(page_id)
            if page is None:
                return
            self._write_back(page)

    def flush_all(self) -> None:
        with self._lock:
            for page in list(self._frames.values()):
                if page.dirty:
                    self._write_back(page)
            self.files.disk.flush()

    def drop_all(self, *, flush: bool = True) -> None:
        """Empty the pool; with ``flush=False`` dirty pages are discarded
        (used to simulate a crash)."""
        with self._lock:
            if flush:
                self.flush_all()
            for page_id in list(self._frames):
                self.policy.evict(page_id)
            self._frames.clear()

    # -- internals ---------------------------------------------------------------

    def _write_back(self, page: Page) -> None:
        # The page latch keeps a concurrent logged mutation from being
        # captured half-applied (and before its LSN stamp): flush_all /
        # flush_page may run while writers are active.  Mutators never
        # take the pool lock while holding a page latch, so the
        # pool-lock -> page-latch order here cannot deadlock.
        with page.latch:
            if not page.dirty:
                return
            if self.wal is not None:
                # WAL-before-page: only the prefix covering this page's
                # last logged change is forced, not the whole buffer.
                self.wal.flush(upto_lsn=page.lsn)
            maybe_crash("buffer.writeback")
            block = page.to_block()
            # Bounded retry: page writes are idempotent.  On final
            # failure the page stays dirty (and resident, for eviction
            # callers) so no acknowledged data is silently dropped.
            retry_io(lambda: self.files.write_page(page.page_id, block))
            page.dirty = False
            page.rec_lsn = None
            self.stats.dirty_writebacks += 1

    def _ensure_frame_available(self) -> None:
        if len(self._frames) < self.capacity:
            return
        victim_id = self.policy.victim(self.pinned_pages)
        if victim_id is None:
            raise BufferPoolFullError(
                f"all {self.capacity} frames are pinned")
        # Write back *before* removing the frame: if the device write
        # fails, the dirty victim must stay resident or its latest
        # (possibly committed) contents would be lost with it.
        victim = self._frames[victim_id]
        self._write_back(victim)
        del self._frames[victim_id]
        self.policy.evict(victim_id)
        self.stats.evictions += 1

    def discard_page(self, page_id: PageId) -> None:
        """Drop a resident frame without writing it back.

        Used by the scrubber after it rewrites a page image directly on
        disk: the stale in-memory copy must not shadow (or later
        clobber) the repaired block.  Discarding a pinned page is a
        caller bug."""
        with self._lock:
            page = self._frames.get(page_id)
            if page is None:
                return
            if page.pin_count > 0:
                raise BufferPoolError(
                    f"cannot discard pinned page {page_id}")
            del self._frames[page_id]
            self.policy.evict(page_id)

    def iter_resident(self) -> Iterator[Page]:
        return iter(list(self._frames.values()))


# Imported late to avoid a cycle: the WAL writes through the disk manager,
# not through the pool, but the pool needs its flush() for the WAL rule.
from repro.storage.wal import WriteAheadLog  # noqa: E402  (cycle guard)
