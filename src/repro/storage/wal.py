"""Write-ahead log.

A redo/undo log on its own block device (mirroring the classical practice of
separating the log from data volumes).  Records carry physical before/after
images, which makes both recovery phases idempotent:

- **redo**: re-apply every update's after-image in log order;
- **undo**: apply before-images of losers (transactions with no COMMIT) in
  reverse log order.

The buffer pool enforces the write-ahead rule by calling
:meth:`WriteAheadLog.flush` with each page's LSN before writing the page.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, Optional

from repro.errors import WALError
from repro.storage.disk import BlockDevice
from repro.storage.page import PageId


class LogKind(IntEnum):
    BEGIN = 1
    COMMIT = 2
    ABORT = 3
    UPDATE = 4
    CHECKPOINT = 5


_REC_HEADER = struct.Struct("<QQBI")  # lsn, txn_id, kind, payload_len
_UPDATE_HEADER = struct.Struct("<IIIII")  # file, page, offset, blen, alen


@dataclass(frozen=True)
class LogRecord:
    """One log entry.  ``page_id``/``offset``/images only for UPDATE."""

    lsn: int
    txn_id: int
    kind: LogKind
    page_id: Optional[PageId] = None
    offset: int = 0
    before: bytes = b""
    after: bytes = b""

    def encode(self) -> bytes:
        if self.kind is LogKind.UPDATE:
            assert self.page_id is not None
            payload = _UPDATE_HEADER.pack(
                self.page_id.file_id, self.page_id.page_no, self.offset,
                len(self.before), len(self.after)) + self.before + self.after
        else:
            payload = b""
        return _REC_HEADER.pack(self.lsn, self.txn_id, int(self.kind),
                                len(payload)) + payload

    @classmethod
    def decode(cls, buf: bytes, pos: int) -> tuple["LogRecord", int]:
        lsn, txn_id, kind, plen = _REC_HEADER.unpack_from(buf, pos)
        pos += _REC_HEADER.size
        payload = buf[pos:pos + plen]
        if len(payload) != plen:
            raise WALError("truncated log record payload")
        pos += plen
        if LogKind(kind) is LogKind.UPDATE:
            fid, pno, offset, blen, alen = _UPDATE_HEADER.unpack_from(payload, 0)
            body = payload[_UPDATE_HEADER.size:]
            if len(body) != blen + alen:
                raise WALError("corrupt UPDATE record images")
            rec = cls(lsn, txn_id, LogKind.UPDATE, PageId(fid, pno), offset,
                      bytes(body[:blen]), bytes(body[blen:]))
        else:
            rec = cls(lsn, txn_id, LogKind(kind))
        return rec, pos


class WriteAheadLog:
    """Append-only log over a dedicated block device.

    The on-disk layout is a plain byte stream chunked into blocks; the first
    8 bytes of the device (block 0) store the durable end-of-log offset so a
    reopened log knows where valid data stops.
    """

    _TAIL_HEADER = struct.Struct("<Q")

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self._buffer = bytearray()
        self._next_lsn = 1
        self._flushed_lsn = 0
        self._durable_bytes = 0  # bytes of log stream on disk
        self._stream_cache: Optional[bytes] = None
        if device.num_blocks() > 0:
            self._recover_tail()

    # -- append ---------------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def append(self, txn_id: int, kind: LogKind,
               page_id: Optional[PageId] = None, offset: int = 0,
               before: bytes = b"", after: bytes = b"") -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        record = LogRecord(lsn, txn_id, kind, page_id, offset, before, after)
        self._buffer += record.encode()
        self._pending_lsn = lsn
        return lsn

    def log_update(self, txn_id: int, page_id: PageId, offset: int,
                   before: bytes, after: bytes) -> int:
        return self.append(txn_id, LogKind.UPDATE, page_id, offset,
                           before, after)

    # -- durability --------------------------------------------------------------

    def flush(self, upto_lsn: Optional[int] = None) -> None:
        """Make the log durable at least up to ``upto_lsn`` (all of it when
        ``None``).  No-op when already durable."""
        if upto_lsn is not None and upto_lsn <= self._flushed_lsn:
            return
        if not self._buffer:
            return
        stream_offset = self._durable_bytes
        data = bytes(self._buffer)
        block_size = self.device.block_size
        first_block = 1 + stream_offset // block_size
        pad_before = stream_offset % block_size
        if pad_before:
            # Re-read the partially filled tail block and extend it.
            tail = bytearray(self.device.read_block(first_block))
            tail[pad_before:pad_before + len(data)] = \
                data[:block_size - pad_before]
            self.device.write_block(first_block, bytes(tail[:block_size]))
            data = data[block_size - pad_before:]
            first_block += 1
        block_no = first_block
        while data:
            chunk = data[:block_size]
            data = data[block_size:]
            if len(chunk) < block_size:
                chunk = chunk + bytes(block_size - len(chunk))
            self.device.write_block(block_no, chunk)
            block_no += 1
        self._durable_bytes += len(self._buffer)
        self._buffer.clear()
        header = self._TAIL_HEADER.pack(self._durable_bytes)
        self.device.write_block(0, header + bytes(block_size - len(header)))
        self.device.flush()
        self._flushed_lsn = self._next_lsn - 1
        self._stream_cache = None

    # -- reading ------------------------------------------------------------------

    def records(self) -> Iterator[LogRecord]:
        """Iterate durable records followed by still-buffered ones."""
        stream = self._durable_stream() + bytes(self._buffer)
        pos = 0
        while pos < len(stream):
            record, pos = LogRecord.decode(stream, pos)
            yield record

    def _durable_stream(self) -> bytes:
        if self._stream_cache is None:
            block_size = self.device.block_size
            chunks = []
            remaining = self._durable_bytes
            block_no = 1
            while remaining > 0:
                block = self.device.read_block(block_no)
                take = min(block_size, remaining)
                chunks.append(block[:take])
                remaining -= take
                block_no += 1
            self._stream_cache = b"".join(chunks)
        return self._stream_cache

    def _recover_tail(self) -> None:
        header = self.device.read_block(0)
        (self._durable_bytes,) = self._TAIL_HEADER.unpack_from(header, 0)
        max_lsn = 0
        for record in self.records():
            max_lsn = max(max_lsn, record.lsn)
        self._next_lsn = max_lsn + 1
        self._flushed_lsn = max_lsn

    # -- recovery --------------------------------------------------------------

    def analyze(self) -> tuple[set[int], set[int]]:
        """Return (committed txn ids, loser txn ids)."""
        seen: set[int] = set()
        ended: set[int] = set()
        for record in self.records():
            if record.kind is LogKind.BEGIN:
                seen.add(record.txn_id)
            elif record.kind in (LogKind.COMMIT, LogKind.ABORT):
                ended.add(record.txn_id)
        return ended & seen | (ended - seen), seen - ended

    def recover_into(self, file_manager) -> dict:
        """Run redo+undo against ``file_manager``'s pages.

        Returns a summary dict (counts) used by recovery tests.  Pages are
        rewritten directly through the file manager; the caller must start
        with an empty buffer pool.
        """
        from repro.storage.page import Page  # local import avoids cycle

        committed, losers = self.analyze()
        records = list(self.records())
        redone = undone = 0

        def apply(page_id: PageId, offset: int, image: bytes) -> None:
            block = file_manager.read_page(page_id)
            page = Page.from_block(page_id, block, verify=False)
            page.write(offset, image)
            file_manager.write_page(page_id, page.to_block())

        for record in records:
            if record.kind is LogKind.UPDATE:
                apply(record.page_id, record.offset, record.after)
                redone += 1
        for record in reversed(records):
            if record.kind is LogKind.UPDATE and record.txn_id in losers:
                apply(record.page_id, record.offset, record.before)
                undone += 1
        file_manager.disk.flush()
        return {"redone": redone, "undone": undone,
                "committed": sorted(committed), "losers": sorted(losers)}

    # -- maintenance -----------------------------------------------------------

    def truncate(self) -> None:
        """Discard the log after a checkpoint (all data pages are durable)."""
        self._buffer.clear()
        self._durable_bytes = 0
        self._stream_cache = None
        header = self._TAIL_HEADER.pack(0)
        block_size = self.device.block_size
        if self.device.num_blocks() > 0:
            self.device.write_block(0, header + bytes(block_size - len(header)))
        else:
            self.device.append_block(header + bytes(block_size - len(header)))
        self.device.flush()

    def size_bytes(self) -> int:
        return self._durable_bytes + len(self._buffer)
