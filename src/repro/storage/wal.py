"""Write-ahead log (ARIES-lite).

A redo/undo log on its own block device (mirroring the classical practice
of separating the log from data volumes).  Records carry physical
before/after images plus the per-transaction backward chain ARIES needs:

- ``prev_lsn`` links each record to the transaction's previous record, so
  rollback can walk a transaction's history without scanning the log;
- ``CLR`` (compensation) records are written while undoing; they are
  *redo-only* and carry ``undo_next_lsn`` so that a crash in the middle of
  an abort or of recovery's own undo pass never undoes the same update
  twice;
- ``END`` marks a transaction fully finished (committed and released, or
  aborted and fully compensated); analysis treats only transactions
  without an END/COMMIT as losers.

Record format (header little-endian, payload per kind)::

    lsn u64 | txn_id u64 | prev_lsn u64 | undo_next_lsn u64 | kind u8 | len u32
    UPDATE/CLR payload: op u8 | file u32 | page u32 | slot_or_offset u32
                        | blen u32 | alen u32 | before image | after image
    CHECKPOINT payload: JSON {"dirty": [[file, page, rec_lsn]...],
                              "active": {txn_id: last_lsn}}

UPDATE/CLR records come in two flavours, distinguished by ``op``:

- ``op = 0`` (byte image): before/after are raw bytes at a page offset.
  Used by the storage service's byte-level transactions.  Undo applies
  the before image verbatim — sound only when writers to one page are
  serialized.
- ``op = HEAP_INSERT/HEAP_DELETE/HEAP_UPDATE`` (physiological): the
  images are *record payloads* and the third integer is a slot number.
  Redo re-applies the slotted-page operation; undo applies the logical
  inverse on the slot.  This is what makes row-level concurrency safe:
  undoing one transaction's slot never clobbers bytes (slot directory,
  compacted payloads) that a committed neighbour on the same page wrote
  later.

The buffer pool enforces the write-ahead rule by calling
:meth:`WriteAheadLog.flush` with each page's LSN before writing the page;
:meth:`flush` honours that bound and only forces the needed log prefix.
Appends and flushes are thread-safe: group commit relies on concurrent
committers batching into a single device flush.
"""

from __future__ import annotations

import json
import struct
import threading
from collections import deque
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, Optional

from repro.errors import DiskFullError, WALError, WALFullError
from repro.faults.crashpoints import maybe_crash
from repro.storage.disk import BlockDevice
from repro.storage.integrity import retry_io
from repro.storage.page import PageId


class LogKind(IntEnum):
    BEGIN = 1
    COMMIT = 2
    ABORT = 3
    UPDATE = 4
    CHECKPOINT = 5
    CLR = 6       # compensation log record (redo-only)
    END = 7       # transaction fully finished (post-commit or post-undo)


_REC_HEADER = struct.Struct("<QQQQBI")  # lsn, txn, prev, undo_next, kind, len
_UPDATE_HEADER = struct.Struct("<BIIIII")  # op, file, page, slot/off, blen, alen

# Physiological heap operation codes carried in UPDATE/CLR records.
OP_BYTES = 0
OP_HEAP_INSERT = 1
OP_HEAP_DELETE = 2
OP_HEAP_UPDATE = 3
# MVCC version-chain operations (versioned heaps).  They redo/undo like
# their plain-heap counterparts but are distinct kinds so the log is
# self-describing about version-chain maintenance:
# - VERSION_CREATE places an old-version *copy* record (the pre-update
#   image an update pushes down its chain) — physically an insert;
# - VERSION_STAMP rewrites only a record's version header in place
#   (xmax stamping on delete, prev-pointer cuts by vacuum) — physically
#   a same-size update carrying full before/after payload images.
OP_VERSION_CREATE = 4
OP_VERSION_STAMP = 5


@dataclass(frozen=True)
class LogRecord:
    """One log entry.  ``page_id``/``offset``/images only for UPDATE/CLR
    (``offset`` holds the slot number for physiological heap ops);
    ``undo_next_lsn`` only for CLR; ``after`` doubles as the raw payload
    for CHECKPOINT records."""

    lsn: int
    txn_id: int
    kind: LogKind
    page_id: Optional[PageId] = None
    offset: int = 0
    before: bytes = b""
    after: bytes = b""
    prev_lsn: int = 0
    undo_next_lsn: int = 0
    op: int = OP_BYTES

    def encode(self) -> bytes:
        if self.kind in (LogKind.UPDATE, LogKind.CLR):
            assert self.page_id is not None
            payload = _UPDATE_HEADER.pack(
                self.op, self.page_id.file_id, self.page_id.page_no,
                self.offset, len(self.before),
                len(self.after)) + self.before + self.after
        elif self.kind is LogKind.CHECKPOINT:
            payload = self.after
        else:
            payload = b""
        return _REC_HEADER.pack(self.lsn, self.txn_id, self.prev_lsn,
                                self.undo_next_lsn, int(self.kind),
                                len(payload)) + payload

    @classmethod
    def decode(cls, buf: bytes, pos: int) -> tuple["LogRecord", int]:
        lsn, txn_id, prev_lsn, undo_next, kind, plen = \
            _REC_HEADER.unpack_from(buf, pos)
        pos += _REC_HEADER.size
        payload = buf[pos:pos + plen]
        if len(payload) != plen:
            raise WALError("truncated log record payload")
        pos += plen
        kind = LogKind(kind)
        if kind in (LogKind.UPDATE, LogKind.CLR):
            op, fid, pno, offset, blen, alen = \
                _UPDATE_HEADER.unpack_from(payload, 0)
            body = payload[_UPDATE_HEADER.size:]
            if len(body) != blen + alen:
                raise WALError("corrupt UPDATE record images")
            rec = cls(lsn, txn_id, kind, PageId(fid, pno), offset,
                      bytes(body[:blen]), bytes(body[blen:]),
                      prev_lsn, undo_next, op)
        elif kind is LogKind.CHECKPOINT:
            rec = cls(lsn, txn_id, kind, after=bytes(payload),
                      prev_lsn=prev_lsn)
        else:
            rec = cls(lsn, txn_id, kind, prev_lsn=prev_lsn,
                      undo_next_lsn=undo_next)
        return rec, pos

    # -- checkpoint payload helpers ------------------------------------------

    def checkpoint_tables(self) -> tuple[dict[PageId, int], dict[int, int]]:
        """Decode a CHECKPOINT record into (dirty page table, active txn
        table)."""
        if self.kind is not LogKind.CHECKPOINT:
            raise WALError("not a CHECKPOINT record")
        state = json.loads(self.after.decode()) if self.after else \
            {"dirty": [], "active": {}}
        dirty = {PageId(fid, pno): rec_lsn
                 for fid, pno, rec_lsn in state.get("dirty", [])}
        active = {int(txn): lsn
                  for txn, lsn in state.get("active", {}).items()}
        return dirty, active

    def checkpoint_redo_lsn(self) -> int:
        """The safe redo lower bound recorded by this CHECKPOINT
        (0 = none)."""
        if self.kind is not LogKind.CHECKPOINT:
            raise WALError("not a CHECKPOINT record")
        if not self.after:
            return 0
        return int(json.loads(self.after.decode()).get("redo", 0))


class WriteAheadLog:
    """Append-only log over a dedicated block device.

    The on-disk layout is a plain byte stream chunked into blocks; block 0
    stores the durable end-of-log offset (so a reopened log knows where
    valid data stops) and an LSN floor (so LSNs stay monotonic across
    checkpoint truncation — page LSNs on data pages outlive the log
    records that produced them, and conditional redo depends on new
    records always carrying larger LSNs).  A flush that dies between
    data-block writes and the block-0 header update leaves the header
    pointing at the old tail, so a torn flush is simply invisible.
    """

    _TAIL_HEADER = struct.Struct("<QQ")  # durable bytes, next-LSN floor

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self._buffer = bytearray()
        # (lsn, encoded length) per buffered record, in append order —
        # consumed from the front by partial flushes.
        self._bounds: deque[tuple[int, int]] = deque()
        self._next_lsn = 1
        self._flushed_lsn = 0
        self._durable_bytes = 0  # bytes of log stream on disk
        self._stream_cache: Optional[bytes] = None
        self._mutex = threading.Lock()       # buffer + counters
        self._flush_lock = threading.Lock()  # one flusher at a time
        # Bytes discarded from the durable tail on reopen (torn flush or
        # trailing garbage) — exposed as an integrity gauge.
        self.truncated_tail_bytes = 0
        if device.num_blocks() > 0:
            self._recover_tail()

    # -- append ---------------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def append(self, txn_id: int, kind: LogKind,
               page_id: Optional[PageId] = None, offset: int = 0,
               before: bytes = b"", after: bytes = b"",
               prev_lsn: int = 0, undo_next_lsn: int = 0,
               op: int = OP_BYTES) -> int:
        with self._mutex:
            lsn = self._next_lsn
            self._next_lsn += 1
            record = LogRecord(lsn, txn_id, kind, page_id, offset,
                               before, after, prev_lsn, undo_next_lsn, op)
            encoded = record.encode()
            self._buffer += encoded
            self._bounds.append((lsn, len(encoded)))
            return lsn

    def log_update(self, txn_id: int, page_id: PageId, offset: int,
                   before: bytes, after: bytes, prev_lsn: int = 0) -> int:
        """Byte-image update: raw before/after bytes at a page offset."""
        return self.append(txn_id, LogKind.UPDATE, page_id, offset,
                           before, after, prev_lsn=prev_lsn)

    def log_heap(self, txn_id: int, op: int, page_id: PageId, slot: int,
                 before: bytes, after: bytes, prev_lsn: int = 0) -> int:
        """Physiological heap update: record payload images at a slot."""
        return self.append(txn_id, LogKind.UPDATE, page_id, slot,
                           before, after, prev_lsn=prev_lsn, op=op)

    def log_clr(self, txn_id: int, page_id: PageId, offset: int,
                after: bytes, undo_next_lsn: int, prev_lsn: int = 0,
                op: int = OP_BYTES) -> int:
        """Compensation record: redo-only image written while undoing."""
        return self.append(txn_id, LogKind.CLR, page_id, offset,
                           b"", after, prev_lsn=prev_lsn,
                           undo_next_lsn=undo_next_lsn, op=op)

    def log_checkpoint(self, dirty_pages: dict[PageId, int],
                       active_txns: dict[int, int],
                       redo_lsn: int = 0) -> int:
        """Fuzzy checkpoint: dirty page table + active transaction table,
        taken without quiescing writers or flushing data pages.

        ``redo_lsn`` is the caller-computed safe redo lower bound.  The
        caller must capture it *before* snapshotting the dirty page
        table (``min(next_lsn-at-capture, DPT rec_lsns)``): a page
        dirtied between the DPT snapshot and this append is missing from
        the DPT, but its records carry LSNs at or above the captured
        bound, so they are never pruned from redo.  0 means "no bound"
        (redo scans everything; conditional page-LSN gating still skips
        the writes)."""
        payload = json.dumps({
            "dirty": [[pid.file_id, pid.page_no, rec_lsn]
                      for pid, rec_lsn in sorted(dirty_pages.items())],
            "active": {str(txn): lsn
                       for txn, lsn in sorted(active_txns.items())},
            "redo": redo_lsn,
        }).encode()
        return self.append(0, LogKind.CHECKPOINT, after=payload)

    # -- durability --------------------------------------------------------------

    def flush(self, upto_lsn: Optional[int] = None) -> None:
        """Make the log durable at least up to ``upto_lsn`` (all of it when
        ``None``).  Partial bounds are honoured: the WAL-before-page rule
        only forces the prefix the evicting page needs.  No-op when already
        durable."""
        if upto_lsn is not None and upto_lsn <= self._flushed_lsn:
            return
        with self._flush_lock:
            with self._mutex:
                if upto_lsn is not None and upto_lsn <= self._flushed_lsn:
                    return
                if not self._buffer:
                    return
                if upto_lsn is None:
                    cut = len(self._buffer)
                    last_lsn = self._bounds[-1][0]
                else:
                    cut = 0
                    last_lsn = self._flushed_lsn
                    for lsn, nbytes in self._bounds:
                        if lsn > upto_lsn:
                            break
                        cut += nbytes
                        last_lsn = lsn
                    if cut == 0:
                        return
                data = bytes(self._buffer[:cut])
                stream_offset = self._durable_bytes
            # Device writes happen outside the buffer mutex so concurrent
            # committers can keep appending (group commit batches them
            # into the next flush); _flush_lock serialises flushers.
            # Buffer state is consumed only after the whole device
            # sequence succeeds: a failed flush leaves the WAL exactly as
            # it was (failure-atomic), so the caller can retry, abort the
            # transaction, or apply backpressure.  The block rewrites are
            # idempotent, so transient device errors get a bounded retry.
            try:
                retry_io(lambda: self._write_stream(
                    stream_offset, data, last_lsn))
            except DiskFullError as exc:
                raise WALFullError(
                    f"WAL device out of space: {exc}") from exc
            with self._mutex:
                consumed = 0
                while self._bounds and consumed < cut:
                    consumed += self._bounds.popleft()[1]
                del self._buffer[:cut]
                self._durable_bytes += cut
                self._flushed_lsn = max(self._flushed_lsn, last_lsn)
                self._stream_cache = None

    def _write_stream(self, stream_offset: int, data: bytes,
                      last_lsn: int) -> None:
        """Write ``data`` at log-stream offset ``stream_offset``, then the
        tail header, then fsync.  Idempotent: safe to rerun after any
        partial failure."""
        block_size = self.device.block_size
        first_block = 1 + stream_offset // block_size
        pad_before = stream_offset % block_size
        total = stream_offset + len(data)
        if pad_before:
            # Re-read the partially filled tail block and extend it.
            tail = bytearray(self.device.read_block(first_block))
            tail[pad_before:pad_before + len(data)] = \
                data[:block_size - pad_before]
            self.device.write_block(first_block, bytes(tail[:block_size]))
            data = data[block_size - pad_before:]
            first_block += 1
        block_no = first_block
        while data:
            chunk = data[:block_size]
            data = data[block_size:]
            if len(chunk) < block_size:
                chunk = chunk + bytes(block_size - len(chunk))
            self.device.write_block(block_no, chunk)
            block_no += 1
        # A crash here tears the flush: data blocks written, tail
        # header still pointing at the old end-of-log — the records
        # are invisible on reopen, as if the flush never happened.
        maybe_crash("wal.flush.mid")
        header = self._TAIL_HEADER.pack(total, last_lsn + 1)
        self.device.write_block(
            0, header + bytes(block_size - len(header)))
        self.device.flush()

    def would_overflow(self, extra_bytes: int = 0) -> bool:
        """Would flushing the buffer plus ``extra_bytes`` more exceed the
        device's capacity?  A cheap in-memory check the commit path uses
        to refuse a commit *before* its COMMIT record exists, turning a
        hard ENOSPC into a clean abort."""
        capacity = self.device.capacity_blocks
        if capacity is None:
            return False
        block_size = self.device.block_size
        with self._mutex:
            total = self._durable_bytes + len(self._buffer) + extra_bytes
        return 1 + -(-total // block_size) > capacity

    # -- reading ------------------------------------------------------------------

    def records(self) -> Iterator[LogRecord]:
        """Iterate durable records followed by still-buffered ones.

        The snapshot is taken under the flush lock: an in-flight flush
        has already advanced ``_durable_bytes`` past blocks it has not
        finished writing, so reading without the lock could decode
        garbage (or silently misclassify transactions).  Both locks are
        released before the first record is yielded.
        """
        with self._flush_lock, self._mutex:
            stream = self._durable_stream() + bytes(self._buffer)
        pos = 0
        while pos < len(stream):
            record, pos = LogRecord.decode(stream, pos)
            yield record

    def _durable_stream(self) -> bytes:
        if self._stream_cache is None:
            block_size = self.device.block_size
            chunks = []
            remaining = self._durable_bytes
            block_no = 1
            while remaining > 0:
                block = self.device.read_block(block_no)
                take = min(block_size, remaining)
                chunks.append(block[:take])
                remaining -= take
                block_no += 1
            self._stream_cache = b"".join(chunks)
        return self._stream_cache

    def _recover_tail(self) -> None:
        """Rebuild in-memory state from the on-disk log, defensively.

        The header's byte count is a claim, not a guarantee: a torn flush
        or trailing garbage can leave the tail undecodable.  Rather than
        wedging the reopen, decoding stops at the last record boundary
        that parses cleanly with strictly increasing LSNs; everything
        after it is discarded (counted in ``truncated_tail_bytes``).  The
        LSN floor keeps LSNs monotonic regardless."""
        header = self.device.read_block(0)
        claimed, lsn_floor = self._TAIL_HEADER.unpack_from(header, 0)
        block_size = self.device.block_size
        available = max(0, self.device.num_blocks() - 1) * block_size
        self._durable_bytes = min(claimed, available)
        self.truncated_tail_bytes = max(0, claimed - available)
        stream = self._durable_stream()
        pos = 0
        max_lsn = 0
        while pos < len(stream):
            try:
                record, end = LogRecord.decode(stream, pos)
            except (WALError, ValueError, struct.error):
                break
            if record.lsn <= max_lsn:
                break  # LSNs are strictly increasing; this is garbage
            max_lsn = record.lsn
            pos = end
        if pos < len(stream):
            self.truncated_tail_bytes += len(stream) - pos
            self._durable_bytes = pos
            self._stream_cache = stream[:pos]
        self._next_lsn = max(max_lsn + 1, lsn_floor)
        self._flushed_lsn = self._next_lsn - 1

    # -- recovery --------------------------------------------------------------

    def analyze(self) -> tuple[set[int], set[int]]:
        """Return (committed txn ids, loser txn ids).

        Losers are transactions that neither committed nor finished undoing
        (no COMMIT and no END record) — an ABORT record alone marks a
        rollback *in progress*, so aborted-but-unfinished transactions are
        undone at recovery rather than miscounted as committed.  The
        classification is the recovery manager's analysis phase — one
        authoritative implementation.
        """
        from repro.storage.recovery import RecoveryManager

        analysis = RecoveryManager(self, None).analyze(
            collect_updates=False)
        return analysis["committed"], analysis["losers"]

    def has_losers(self) -> bool:
        """True when the log still holds unfinished transactions — their
        undo information must survive, so checkpoints must not truncate."""
        return bool(self.analyze()[1])

    def recover_into(self, file_manager) -> dict:
        """Run the full ARIES-lite analysis/redo/undo against
        ``file_manager``'s pages.  The caller must start with an empty
        buffer pool.  Returns a summary dict (counts)."""
        from repro.storage.recovery import RecoveryManager

        return RecoveryManager(self, file_manager).recover()

    # -- maintenance -----------------------------------------------------------

    def truncate(self) -> None:
        """Discard the log after a clean checkpoint (no active transactions
        and all data pages durable)."""
        with self._flush_lock, self._mutex:
            header = self._TAIL_HEADER.pack(0, self._next_lsn)
            block_size = self.device.block_size

            def write_header() -> None:
                if self.device.num_blocks() > 0:
                    self.device.write_block(
                        0, header + bytes(block_size - len(header)))
                else:
                    self.device.append_block(
                        header + bytes(block_size - len(header)))
                self.device.flush()

            # Header first: if the device fails, in-memory state still
            # matches the (old) on-disk log.
            try:
                retry_io(write_header)
            except DiskFullError as exc:
                raise WALFullError(
                    f"WAL device out of space: {exc}") from exc
            self._buffer.clear()
            self._bounds.clear()
            self._durable_bytes = 0
            self._stream_cache = None
            self._flushed_lsn = self._next_lsn - 1

    def size_bytes(self) -> int:
        return self._durable_bytes + len(self._buffer)
