"""Page abstraction shared by the buffer pool and access layer.

A :class:`Page` is a mutable view over one device block plus bookkeeping:
a page id, a dirty flag, a pin count, and a page LSN used by the WAL
protocol (a page may not be written to disk before the log covering its
latest change is durable).

The on-disk image carries a trailer the payload never touches:

    [payload ... ][page LSN (8 bytes)][CRC32 (4 bytes)]

The page LSN makes redo *conditional* — recovery re-applies a log record
only when ``record.lsn > page_lsn`` — and the checksum detects torn or
corrupted blocks on read.  Pages mutated outside the WAL protocol keep
LSN 0 and are simply always redo candidates (a redundant but idempotent
re-apply of physical images).
"""

from __future__ import annotations

import struct
import threading
import zlib
from dataclasses import dataclass

from repro.errors import ChecksumError

CHECKSUM_SIZE = 4
LSN_SIZE = 8
PAGE_TRAILER_SIZE = LSN_SIZE + CHECKSUM_SIZE

_LSN = struct.Struct("<Q")


@dataclass(frozen=True, order=True)
class PageId:
    """Identifies a page as (file id, page number within the file)."""

    file_id: int
    page_no: int

    def __repr__(self) -> str:  # compact form shows up in many test asserts
        return f"PageId({self.file_id}:{self.page_no})"


class Page:
    """In-memory image of one block, with pin/dirty/LSN bookkeeping.

    The usable payload excludes the trailing LSN + checksum: a page created
    over a 4096-byte block exposes 4084 writable bytes through :attr:`data`.

    ``lsn`` is the LSN of the last logged change (persisted in the block
    trailer); ``rec_lsn`` is the LSN that first dirtied the page since it
    was last clean — the recovery-LSN entry the fuzzy-checkpoint dirty
    page table records.  ``latch`` is a short-term mutual-exclusion lock
    for physical page access, distinct from transaction-level locks.
    """

    def __init__(self, page_id: PageId, block_size: int) -> None:
        self.page_id = page_id
        self.block_size = block_size
        self.data = bytearray(block_size - PAGE_TRAILER_SIZE)
        self.dirty = False
        self.pin_count = 0
        self.lsn = 0
        self.rec_lsn: int | None = None
        self.latch = threading.RLock()

    @property
    def usable_size(self) -> int:
        return self.block_size - PAGE_TRAILER_SIZE

    # -- byte-level accessors (the paper's "byte level" storage interface) --

    def read(self, offset: int, length: int) -> bytes:
        return bytes(self.data[offset:offset + length])

    def write(self, offset: int, payload: bytes) -> None:
        if offset < 0 or offset + len(payload) > self.usable_size:
            raise ValueError(
                f"write [{offset}, {offset + len(payload)}) outside usable "
                f"page area of {self.usable_size} bytes")
        self.data[offset:offset + len(payload)] = payload
        self.dirty = True

    # -- on-disk image -------------------------------------------------------

    def to_block(self) -> bytes:
        """Serialise to a full block: payload, page LSN, CRC32 checksum.

        The checksum covers payload + LSN so a torn trailer is detected
        like any other corruption.
        """
        body = bytes(self.data) + _LSN.pack(self.lsn)
        crc = zlib.crc32(body) & 0xFFFFFFFF
        return body + crc.to_bytes(CHECKSUM_SIZE, "little")

    @classmethod
    def from_block(cls, page_id: PageId, block: bytes,
                   verify: bool = True) -> "Page":
        body, crc_bytes = block[:-CHECKSUM_SIZE], block[-CHECKSUM_SIZE:]
        if verify:
            expected = int.from_bytes(crc_bytes, "little")
            actual = zlib.crc32(body) & 0xFFFFFFFF
            # An all-zero block is a freshly allocated page, never written;
            # its stored checksum is zero which only matches if the payload
            # CRC happens to be zero, so special-case it.
            if expected != actual and any(block):
                raise ChecksumError(
                    f"{page_id}: checksum mismatch "
                    f"(stored {expected:#x}, computed {actual:#x})")
        page = cls(page_id, len(block))
        page.data[:] = body[:-LSN_SIZE]
        (page.lsn,) = _LSN.unpack_from(body, len(body) - LSN_SIZE)
        return page

    def __repr__(self) -> str:
        return (f"<Page {self.page_id} pins={self.pin_count} "
                f"dirty={self.dirty} lsn={self.lsn}>")
