"""Simulated block devices for the storage layer.

The paper's Storage Services "work at byte level and handle the physical
specification of non-volatile devices".  This module provides that physical
substrate: a block device abstraction with two implementations (in-memory
and file-backed), a configurable cost model so benchmarks can charge
realistic I/O costs, and hooks for fault injection used by the
flexibility-by-adaptation experiments (Figure 7).

Blocks are fixed-size byte strings.  Callers address blocks by integer
block number; allocation policy lives one level up, in the page manager.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import DiskError, DiskFullError

DEFAULT_BLOCK_SIZE = 4096


@dataclass
class DiskStats:
    """Counters maintained by every block device.

    ``time_charged`` accumulates simulated seconds from the cost model; the
    benchmarks report it alongside wall-clock time so that experiments can
    model slow devices without actually sleeping.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    flushes: int = 0
    time_charged: float = 0.0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.flushes = 0
        self.time_charged = 0.0


@dataclass(frozen=True)
class DiskCostModel:
    """Simulated cost of device operations, in seconds.

    The default numbers approximate a commodity SATA SSD; the spinning-rust
    preset (:meth:`hdd`) is used by benchmarks that need a high seek cost to
    make buffer-policy effects visible.
    """

    read_latency: float = 60e-6
    write_latency: float = 80e-6
    per_byte: float = 1e-9
    flush_latency: float = 150e-6

    @classmethod
    def ssd(cls) -> "DiskCostModel":
        return cls()

    @classmethod
    def hdd(cls) -> "DiskCostModel":
        return cls(read_latency=6e-3, write_latency=6e-3,
                   per_byte=8e-9, flush_latency=8e-3)

    @classmethod
    def free(cls) -> "DiskCostModel":
        """A zero-cost model for tests that only care about correctness."""
        return cls(read_latency=0.0, write_latency=0.0,
                   per_byte=0.0, flush_latency=0.0)

    def read_cost(self, nbytes: int) -> float:
        return self.read_latency + self.per_byte * nbytes

    def write_cost(self, nbytes: int) -> float:
        return self.write_latency + self.per_byte * nbytes


class BlockDevice:
    """Abstract fixed-block-size device.

    Subclasses implement :meth:`_read_block` / :meth:`_write_block` /
    :meth:`_flush`; this base class provides bounds checking, statistics,
    cost accounting, and the fault-injection hook.

    The fault hook is a callable ``(op, block_no) -> None`` that may raise
    :class:`~repro.errors.DiskError`; the adaptation experiments install
    hooks that fail specific blocks or entire devices.
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE,
                 capacity_blocks: Optional[int] = None,
                 cost_model: Optional[DiskCostModel] = None) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.cost_model = cost_model or DiskCostModel.free()
        self.stats = DiskStats()
        self._fault_hook: Optional[Callable[[str, int], None]] = None
        self._closed = False
        self._lock = threading.RLock()

    # -- fault injection ----------------------------------------------------

    def set_fault_hook(self, hook: Optional[Callable[[str, int], None]]) -> None:
        """Install (or clear) a fault-injection hook.

        The hook runs before each physical operation with ``op`` in
        ``{"read", "write", "flush"}`` and the target block number
        (``-1`` for flush).
        """
        self._fault_hook = hook

    def _maybe_fault(self, op: str, block_no: int) -> None:
        if self._fault_hook is not None:
            self._fault_hook(op, block_no)

    # -- public API ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def num_blocks(self) -> int:
        """Number of blocks currently allocated on the device."""
        raise NotImplementedError

    def read_block(self, block_no: int) -> bytes:
        with self._lock:
            self._check_open()
            self._check_range(block_no)
            self._maybe_fault("read", block_no)
            data = self._read_block(block_no)
            self.stats.reads += 1
            self.stats.bytes_read += len(data)
            self.stats.time_charged += self.cost_model.read_cost(len(data))
            return data

    def write_block(self, block_no: int, data: bytes) -> None:
        if len(data) != self.block_size:
            raise DiskError(
                f"write of {len(data)} bytes to device with block size "
                f"{self.block_size}")
        with self._lock:
            self._check_open()
            if block_no < 0:
                raise DiskError(f"negative block number {block_no}")
            if (self.capacity_blocks is not None
                    and block_no >= self.capacity_blocks):
                raise DiskFullError(
                    f"block {block_no} beyond capacity {self.capacity_blocks}")
            self._maybe_fault("write", block_no)
            self._write_block(block_no, data)
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
            self.stats.time_charged += self.cost_model.write_cost(len(data))

    def append_block(self, data: bytes) -> int:
        """Write ``data`` to a fresh block at the end of the device."""
        with self._lock:
            block_no = self.num_blocks()
            self.write_block(block_no, data)
            return block_no

    def flush(self) -> None:
        with self._lock:
            self._check_open()
            self._maybe_fault("flush", -1)
            self._flush()
            self.stats.flushes += 1
            self.stats.time_charged += self.cost_model.flush_latency

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._flush()
                self._closed = True

    # -- helpers -------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise DiskError("device is closed")

    def _check_range(self, block_no: int) -> None:
        if block_no < 0 or block_no >= self.num_blocks():
            raise DiskError(
                f"block {block_no} out of range [0, {self.num_blocks()})")

    # -- subclass responsibilities --------------------------------------------

    def _read_block(self, block_no: int) -> bytes:
        raise NotImplementedError

    def _write_block(self, block_no: int, data: bytes) -> None:
        raise NotImplementedError

    def _flush(self) -> None:
        raise NotImplementedError


class MemoryDevice(BlockDevice):
    """Block device held entirely in memory.

    The default substrate for tests and benchmarks: deterministic, fast, and
    still charged through the cost model so experiments can simulate slow
    media.
    """

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE,
                 capacity_blocks: Optional[int] = None,
                 cost_model: Optional[DiskCostModel] = None) -> None:
        super().__init__(block_size, capacity_blocks, cost_model)
        self._blocks: list[bytes] = []

    def num_blocks(self) -> int:
        return len(self._blocks)

    def _read_block(self, block_no: int) -> bytes:
        return self._blocks[block_no]

    def _write_block(self, block_no: int, data: bytes) -> None:
        if block_no == len(self._blocks):
            self._blocks.append(data)
        elif block_no < len(self._blocks):
            self._blocks[block_no] = data
        else:
            # Writing past the end implicitly zero-fills the gap, mirroring
            # sparse-file semantics of the file-backed device.
            zero = bytes(self.block_size)
            self._blocks.extend([zero] * (block_no - len(self._blocks)))
            self._blocks.append(data)

    def _flush(self) -> None:
        pass

    def snapshot(self) -> list[bytes]:
        """Copy of all blocks; used by replication and crash tests."""
        with self._lock:
            return list(self._blocks)

    def restore(self, blocks: list[bytes]) -> None:
        """Replace device contents; used to simulate crash/restart."""
        with self._lock:
            self._blocks = list(blocks)


class FileDevice(BlockDevice):
    """Block device backed by a single OS file.

    Used by durability tests: contents survive :meth:`close` and can be
    reopened by constructing a new :class:`FileDevice` on the same path.
    """

    def __init__(self, path: str | os.PathLike,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 capacity_blocks: Optional[int] = None,
                 cost_model: Optional[DiskCostModel] = None) -> None:
        super().__init__(block_size, capacity_blocks, cost_model)
        self.path = os.fspath(path)
        exists = os.path.exists(self.path)
        self._fh = open(self.path, "r+b" if exists else "w+b")
        size = os.fstat(self._fh.fileno()).st_size
        if size % block_size != 0:
            raise DiskError(
                f"{self.path}: size {size} is not a multiple of block size "
                f"{block_size}")
        self._nblocks = size // block_size

    def num_blocks(self) -> int:
        return self._nblocks

    def _read_block(self, block_no: int) -> bytes:
        self._fh.seek(block_no * self.block_size)
        data = self._fh.read(self.block_size)
        if len(data) != self.block_size:
            raise DiskError(f"short read at block {block_no}")
        return data

    def _write_block(self, block_no: int, data: bytes) -> None:
        self._fh.seek(block_no * self.block_size)
        self._fh.write(data)
        if block_no >= self._nblocks:
            self._nblocks = block_no + 1

    def _flush(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                super().close()
                self._fh.close()
