"""Storage services: the storage layer decomposed at three granularities.

The paper's future work is explicit: "Testing with different levels of
service granularity will give us insights into the right tradeoff between
service granularity and system performance."  This module provides the
cut-points:

- ``coarse``  — one ``StorageService`` exposing the whole stack; one
  service boundary per logical storage request.
- ``medium``  — the Figure 5 decomposition: Disk Manager, File Manager,
  Page Manager, Buffer Manager as separate services.  A page request
  crosses 1-2 boundaries.
- ``fine``    — RISC-style (§1's "narrow functionality through
  well-defined interfaces"): one service per *operation group*, with
  internal calls also routed through the kernel binding, maximising
  boundary crossings.

All three share one :class:`StorageStack` substrate, so benchmarks compare
pure decomposition overhead with identical physical behaviour.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.bindings import Binding, LocalBinding
from repro.errors import WALError
from repro.core.contract import (
    Interface,
    QualityDescription,
    ServiceContract,
    ServicePolicy,
    op,
)
from repro.core.service import Service
from repro.storage.buffer import BufferPool
from repro.storage.disk import BlockDevice, MemoryDevice
from repro.storage.file_manager import DiskManager, FileManager
from repro.storage.page import PageId
from repro.storage.page_manager import PageManager
from repro.storage.wal import LogKind, WriteAheadLog

GRANULARITIES = ("coarse", "medium", "fine")


class StorageStack:
    """The shared physical substrate behind every storage service."""

    def __init__(self, device: Optional[BlockDevice] = None,
                 buffer_capacity: int = 128,
                 replacement_policy: str = "lru",
                 wal_device: Optional[BlockDevice] = None) -> None:
        self.device = device or MemoryDevice()
        self.disk = DiskManager(self.device)
        self.files = FileManager(self.disk)
        self.wal = WriteAheadLog(wal_device) if wal_device is not None \
            else None
        self.pool = BufferPool(self.files, capacity=buffer_capacity,
                               policy=replacement_policy, wal=self.wal)
        self.pages = PageManager(self.pool)
        self._txn_ids = itertools.count(1)
        self._current_txn: Optional[int] = None
        self._txn_last: dict[int, int] = {}

    # Operations shared by the service wrappers ------------------------------------

    def ensure_file(self, name: str) -> int:
        return self.files.ensure_file(name)

    def read(self, file: str, page_no: int, offset: int,
             length: int) -> bytes:
        file_id = self.files.open_file(file)
        with self.pool.pinned(PageId(file_id, page_no)) as page:
            return page.read(offset, length)

    def write(self, file: str, page_no: int, offset: int,
              data: bytes) -> int:
        file_id = self.files.open_file(file)
        page_id = PageId(file_id, page_no)
        page = self.pool.fetch(page_id)
        try:
            with page.latch:
                txn = self._current_txn
                if txn is not None and self.wal is not None:
                    before = page.read(offset, len(data))
                    page.write(offset, data)
                    lsn = self.wal.log_update(
                        txn, page_id, offset, before, bytes(data),
                        prev_lsn=self._txn_last.get(txn, 0))
                    self._txn_last[txn] = lsn
                    if page.rec_lsn is None:
                        page.rec_lsn = lsn
                    page.lsn = lsn
                else:
                    page.write(offset, data)
        finally:
            self.pool.unpin(page_id, dirty=True)
        return len(data)

    def allocate(self, file: str) -> int:
        file_id = self.files.ensure_file(file)
        page = self.pages.allocate(file_id)
        page_no = page.page_id.page_no
        self.pages.unpin(page.page_id, dirty=True)
        return page_no

    def flush(self) -> None:
        self.pool.flush_all()
        self.files.checkpoint_metadata()

    # -- unified begin/commit/abort/recover contract ---------------------------
    #
    # The same transactional surface the data layer exposes, at the byte
    # level: a storage transaction physically logs every ``write`` made
    # while it is open, commit forces the log, abort applies the
    # before-images back (with CLRs, like recovery would).

    def _require_wal(self) -> WriteAheadLog:
        if self.wal is None:
            raise WALError("no WAL attached to this storage stack")
        return self.wal

    def begin(self) -> int:
        wal = self._require_wal()
        if self._current_txn is not None:
            raise WALError("storage transaction already open")
        txn = next(self._txn_ids)
        self._current_txn = txn
        self._txn_last[txn] = wal.append(txn, LogKind.BEGIN)
        return txn

    def commit(self) -> int:
        wal = self._require_wal()
        txn = self._require_open()
        lsn = wal.append(txn, LogKind.COMMIT,
                         prev_lsn=self._txn_last.pop(txn, 0))
        wal.flush(upto_lsn=lsn)
        self._current_txn = None
        return txn

    def abort(self) -> int:
        """Physically undo the open transaction's writes, newest first,
        logging a CLR per image and an END once fully compensated.

        The records to undo are found by walking this transaction's
        ``prev_lsn`` chain backwards from its last record — not by
        matching txn ids across the whole log, which could pick up a
        same-numbered transaction from an earlier incarnation of the
        stack over a persisted log.
        """
        wal = self._require_wal()
        txn = self._require_open()
        chain_head = self._txn_last.pop(txn, 0)
        last = wal.append(txn, LogKind.ABORT, prev_lsn=chain_head)
        by_lsn = {record.lsn: record for record in wal.records()}
        undo = []
        lsn = chain_head
        while lsn:
            record = by_lsn.get(lsn)
            if record is None:
                break
            if record.kind is LogKind.UPDATE:
                undo.append(record)
            lsn = record.prev_lsn
        for record in undo:  # chain walk already yields newest-first
            page = self.pool.fetch(record.page_id)
            try:
                with page.latch:
                    page.write(record.offset, record.before)
                    last = wal.log_clr(txn, record.page_id, record.offset,
                                       after=record.before,
                                       undo_next_lsn=record.prev_lsn,
                                       prev_lsn=last)
                    page.lsn = last
            finally:
                self.pool.unpin(record.page_id, dirty=True)
        wal.append(txn, LogKind.END, prev_lsn=last)
        wal.flush()
        self._current_txn = None
        return txn

    def recover(self) -> dict:
        """Drop cached pages and replay the WAL (analysis/redo/undo)."""
        from repro.storage.recovery import RecoveryManager

        wal = self._require_wal()
        self.pool.drop_all(flush=False)
        self._current_txn = None
        return RecoveryManager(wal, self.files).recover()

    def _require_open(self) -> int:
        if self._current_txn is None:
            raise WALError("no storage transaction open")
        return self._current_txn

    def properties(self) -> dict:
        props = self.pool.properties()
        props.update({
            "files": len(self.files.list_files()),
            "disk_reads": self.device.stats.reads,
            "disk_writes": self.device.stats.writes,
            "workload": props["hit_rate"],
        })
        return props


def _storage_quality(footprint_kb: float) -> QualityDescription:
    return QualityDescription(latency_ms=0.05, availability=0.999,
                              footprint_kb=footprint_kb)


# ---------------------------------------------------------------------------
# Coarse granularity
# ---------------------------------------------------------------------------

STORAGE_INTERFACE = Interface("Storage", (
    op("read", "file:str", "page_no:int", "offset:int", "length:int",
       returns="bytes",
       semantics="read bytes from a page"),
    op("write", "file:str", "page_no:int", "offset:int", "data:bytes",
       returns="int", semantics="write bytes into a page"),
    op("allocate", "file:str", returns="int",
       semantics="allocate a fresh page, returning its number"),
    op("ensure_file", "name:str", returns="int"),
    op("flush", returns="any"),
    op("monitor", returns="dict",
       semantics="functional properties: workload, buffer, fragmentation"),
))

# The unified transaction contract is a *separate* interface on the same
# service: legacy storage implementations can still be adapted to plain
# ``Storage`` without having to provide transactional semantics.
STORAGE_TXN_INTERFACE = Interface("StorageTransactions", (
    op("begin", returns="int",
       semantics="open a storage transaction; writes log physical images"),
    op("commit", returns="int",
       semantics="force the log and close the storage transaction"),
    op("abort", returns="int",
       semantics="physically undo the open transaction (CLR + END)"),
    op("recover", returns="dict",
       semantics="ARIES-lite analysis/redo/undo over the attached WAL"),
))


class StorageService(Service):
    """Coarse-grained storage: the whole stack behind one contract."""

    layer = "storage"

    def __init__(self, stack: StorageStack, name: str = "storage") -> None:
        # Footprint is dominated by the buffer pool: capacity x page size,
        # plus a fixed code-surface share.
        buffer_kb = (stack.pool.capacity
                     * stack.device.block_size) / 1024.0
        contract = ServiceContract(
            service_name=name,
            interfaces=(STORAGE_INTERFACE, STORAGE_TXN_INTERFACE),
            description="byte-level storage over non-volatile devices",
            quality=_storage_quality(footprint_kb=96.0 + buffer_kb),
            tags=frozenset({"storage", "coarse"}))
        super().__init__(name, contract)
        self.stack = stack

    def op_read(self, file, page_no, offset, length):
        return self.stack.read(file, page_no, offset, length)

    def op_write(self, file, page_no, offset, data):
        return self.stack.write(file, page_no, offset, data)

    def op_allocate(self, file):
        return self.stack.allocate(file)

    def op_ensure_file(self, name):
        return self.stack.ensure_file(name)

    def op_flush(self):
        self.stack.flush()

    def op_monitor(self):
        return self.stack.properties()

    def op_begin(self):
        return self.stack.begin()

    def op_commit(self):
        return self.stack.commit()

    def op_abort(self):
        return self.stack.abort()

    def op_recover(self):
        return self.stack.recover()

    def properties(self) -> dict:
        merged = super().properties()
        merged.update(self.stack.properties())
        return merged


# ---------------------------------------------------------------------------
# Medium granularity (Figure 5's managers)
# ---------------------------------------------------------------------------

DISK_INTERFACE = Interface("DiskManager", (
    op("read_block", "block_no:int", returns="bytes"),
    op("write_block", "block_no:int", "data:bytes"),
    op("allocate_block", returns="int"),
    op("sync", returns="any"),
))

FILE_INTERFACE = Interface("FileManager", (
    op("ensure_file", "name:str", returns="int"),
    op("file_pages", "name:str", returns="int"),
    op("list_files", returns="list"),
))

PAGE_INTERFACE = Interface("PageManager", (
    op("allocate_page", "file:str", returns="int"),
    op("free_space_hint", "file:str", "needed:int", returns="any"),
))

BUFFER_INTERFACE = Interface("BufferManager", (
    op("read", "file:str", "page_no:int", "offset:int", "length:int",
       returns="bytes"),
    op("write", "file:str", "page_no:int", "offset:int", "data:bytes",
       returns="int"),
    op("flush", returns="any"),
    op("monitor", returns="dict"),
    op("set_policy", "name:str", returns="any",
       semantics="swap the replacement policy (flexibility by selection)"),
))


class DiskManagerService(Service):
    layer = "storage"

    def __init__(self, stack: StorageStack,
                 name: str = "disk-manager") -> None:
        super().__init__(name, ServiceContract(
            name, (DISK_INTERFACE,),
            description="raw block allocation and I/O",
            quality=_storage_quality(96.0),
            tags=frozenset({"storage", "medium"})))
        self.stack = stack

    def op_read_block(self, block_no):
        return self.stack.disk.read(block_no)

    def op_write_block(self, block_no, data):
        self.stack.disk.write(block_no, data)

    def op_allocate_block(self):
        return self.stack.disk.allocate()

    def op_sync(self):
        self.stack.disk.flush()


class FileManagerService(Service):
    layer = "storage"

    def __init__(self, stack: StorageStack,
                 name: str = "file-manager") -> None:
        super().__init__(name, ServiceContract(
            name, (FILE_INTERFACE,),
            description="named page files over the disk manager",
            quality=_storage_quality(64.0),
            policy=ServicePolicy(dependencies=["DiskManager"]),
            tags=frozenset({"storage", "medium"})))
        self.stack = stack

    def op_ensure_file(self, name):
        return self.stack.files.ensure_file(name)

    def op_file_pages(self, name):
        return self.stack.files.file_size_pages(
            self.stack.files.open_file(name))

    def op_list_files(self):
        return self.stack.files.list_files()


class PageManagerService(Service):
    layer = "storage"

    def __init__(self, stack: StorageStack,
                 name: str = "page-manager") -> None:
        super().__init__(name, ServiceContract(
            name, (PAGE_INTERFACE,),
            description="page allocation and free-space tracking",
            quality=_storage_quality(48.0),
            policy=ServicePolicy(dependencies=["FileManager",
                                               "BufferManager"]),
            tags=frozenset({"storage", "medium"})))
        self.stack = stack

    def op_allocate_page(self, file):
        return self.stack.allocate(file)

    def op_free_space_hint(self, file, needed):
        file_id = self.stack.files.open_file(file)
        hint = self.stack.pages.page_with_space(file_id, needed)
        return None if hint is None else hint.page_no


class BufferManagerService(Service):
    layer = "storage"

    def __init__(self, stack: StorageStack,
                 name: str = "buffer-manager") -> None:
        super().__init__(name, ServiceContract(
            name, (BUFFER_INTERFACE,),
            description="page caching with pluggable replacement",
            quality=_storage_quality(256.0),
            policy=ServicePolicy(dependencies=["FileManager"]),
            tags=frozenset({"storage", "medium"})))
        self.stack = stack

    def op_read(self, file, page_no, offset, length):
        return self.stack.read(file, page_no, offset, length)

    def op_write(self, file, page_no, offset, data):
        return self.stack.write(file, page_no, offset, data)

    def op_flush(self):
        self.stack.flush()

    def op_monitor(self):
        return self.stack.pool.properties()

    def op_set_policy(self, name):
        from repro.storage.buffer import make_policy

        pool = self.stack.pool
        new_policy = make_policy(name)
        for page_id in list(pool._frames):
            new_policy.admit(page_id)
        pool.policy = new_policy
        self.set_property("replacement_policy", name)

    def properties(self) -> dict:
        merged = super().properties()
        merged.update(self.stack.pool.properties())
        return merged


# ---------------------------------------------------------------------------
# Fine granularity (RISC-style)
# ---------------------------------------------------------------------------


class _FineStorageService(Service):
    """One narrow operation group per service; reads/writes route their
    page-number resolution through companion services via the kernel
    binding, maximising crossings (the paper's §1 critique: "coordinating
    large amounts of fine-grained components can create serious
    orchestration problems")."""

    layer = "storage"

    def __init__(self, name: str, interface: Interface,
                 stack: StorageStack, binding: Binding) -> None:
        super().__init__(name, ServiceContract(
            name, (interface,),
            description=f"RISC-style storage fragment: {interface.name}",
            quality=_storage_quality(24.0),
            tags=frozenset({"storage", "fine"})))
        self.stack = stack
        self.binding = binding


class PageReadService(_FineStorageService):
    def __init__(self, stack, binding, resolver: "FileResolveService",
                 name="page-read"):
        super().__init__(name, Interface("PageRead", (
            op("read", "file:str", "page_no:int", "offset:int",
               "length:int", returns="bytes"),)), stack, binding)
        self.resolver = resolver

    def op_read(self, file, page_no, offset, length):
        # Boundary crossing: resolve the file through the resolver service.
        file_id = self.binding.call(self.resolver, "resolve", name=file)
        with self.stack.pool.pinned(PageId(file_id, page_no)) as page:
            return page.read(offset, length)


class PageWriteService(_FineStorageService):
    def __init__(self, stack, binding, resolver: "FileResolveService",
                 name="page-write"):
        super().__init__(name, Interface("PageWrite", (
            op("write", "file:str", "page_no:int", "offset:int",
               "data:bytes", returns="int"),)), stack, binding)
        self.resolver = resolver

    def op_write(self, file, page_no, offset, data):
        file_id = self.binding.call(self.resolver, "resolve", name=file)
        page_id = PageId(file_id, page_no)
        page = self.stack.pool.fetch(page_id)
        try:
            page.write(offset, data)
        finally:
            self.stack.pool.unpin(page_id, dirty=True)
        return len(data)


class FileResolveService(_FineStorageService):
    def __init__(self, stack, binding, name="file-resolve"):
        super().__init__(name, Interface("FileResolve", (
            op("resolve", "name:str", returns="int"),)), stack, binding)

    def op_resolve(self, name):
        return self.stack.files.ensure_file(name)


class PageAllocateService(_FineStorageService):
    def __init__(self, stack, binding, resolver, name="page-allocate"):
        super().__init__(name, Interface("PageAllocate", (
            op("allocate", "file:str", returns="int"),)), stack, binding)
        self.resolver = resolver

    def op_allocate(self, file):
        self.binding.call(self.resolver, "resolve", name=file)
        return self.stack.allocate(file)


class FlushService(_FineStorageService):
    def __init__(self, stack, binding, name="flush"):
        super().__init__(name, Interface("Flush", (
            op("flush", returns="any"),)), stack, binding)

    def op_flush(self):
        self.stack.flush()


# ---------------------------------------------------------------------------
# Granularity façade
# ---------------------------------------------------------------------------


class GranularStorage:
    """Uniform client API over any granularity, counting service-boundary
    crossings through the supplied binding.

    ``read/write/allocate`` match :class:`StorageService`'s interface; the
    benchmark drives all three granularities identically.
    """

    def __init__(self, granularity: str, stack: Optional[StorageStack] = None,
                 binding: Optional[Binding] = None) -> None:
        if granularity not in GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {GRANULARITIES}")
        self.granularity = granularity
        self.stack = stack or StorageStack()
        self.binding = binding or LocalBinding()
        self.services: list[Service] = []
        builder = getattr(self, f"_build_{granularity}")
        builder()
        for service in self.services:
            service.setup()
            service.start()

    # -- builders -------------------------------------------------------------

    def _build_coarse(self) -> None:
        self._storage = StorageService(self.stack)
        self.services = [self._storage]

    def _build_medium(self) -> None:
        self._disk = DiskManagerService(self.stack)
        self._files = FileManagerService(self.stack)
        self._pages = PageManagerService(self.stack)
        self._buffer = BufferManagerService(self.stack)
        self.services = [self._disk, self._files, self._pages, self._buffer]

    def _build_fine(self) -> None:
        self._resolver = FileResolveService(self.stack, self.binding)
        self._reader = PageReadService(self.stack, self.binding,
                                       self._resolver)
        self._writer = PageWriteService(self.stack, self.binding,
                                        self._resolver)
        self._allocator = PageAllocateService(self.stack, self.binding,
                                              self._resolver)
        self._flusher = FlushService(self.stack, self.binding)
        self.services = [self._resolver, self._reader, self._writer,
                         self._allocator, self._flusher]

    # -- uniform client operations ----------------------------------------------

    def read(self, file: str, page_no: int, offset: int,
             length: int) -> bytes:
        if self.granularity == "coarse":
            return self.binding.call(self._storage, "read", file=file,
                                     page_no=page_no, offset=offset,
                                     length=length)
        if self.granularity == "medium":
            return self.binding.call(self._buffer, "read", file=file,
                                     page_no=page_no, offset=offset,
                                     length=length)
        return self.binding.call(self._reader, "read", file=file,
                                 page_no=page_no, offset=offset,
                                 length=length)

    def write(self, file: str, page_no: int, offset: int,
              data: bytes) -> int:
        if self.granularity == "coarse":
            return self.binding.call(self._storage, "write", file=file,
                                     page_no=page_no, offset=offset,
                                     data=data)
        if self.granularity == "medium":
            return self.binding.call(self._buffer, "write", file=file,
                                     page_no=page_no, offset=offset,
                                     data=data)
        return self.binding.call(self._writer, "write", file=file,
                                 page_no=page_no, offset=offset, data=data)

    def allocate(self, file: str) -> int:
        if self.granularity == "coarse":
            return self.binding.call(self._storage, "allocate", file=file)
        if self.granularity == "medium":
            self.binding.call(self._files, "ensure_file", name=file)
            return self.binding.call(self._pages, "allocate_page",
                                     file=file)
        return self.binding.call(self._allocator, "allocate", file=file)

    def flush(self) -> None:
        if self.granularity == "coarse":
            self.binding.call(self._storage, "flush")
        elif self.granularity == "medium":
            self.binding.call(self._buffer, "flush")
        else:
            self.binding.call(self._flusher, "flush")

    @property
    def boundary_crossings(self) -> int:
        return self.binding.calls
